package engine

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent per-query latencies the percentile
// estimates are computed over, summed across stripes. A fixed window
// keeps Stats() O(window) and the engine's memory bounded regardless of
// how many queries it serves.
const latencyWindow = 4096

// minStripeRing floors the per-stripe latency ring so a workload whose
// recordings concentrate on few stripes (e.g. a single-threaded client
// on a many-core engine) still keeps a substantial window on the
// stripes it does use.
const minStripeRing = 256

// Stats is a point-in-time snapshot of an Engine's counters. Totals are
// exact, not sampled: each counter is a sum of per-stripe atomics, so
// once the recording goroutines are quiescent the sums equal the number
// of recorded events precisely.
type Stats struct {
	// Queries is the number of queries answered, including cache hits,
	// collapsed queries, and queries that failed validation.
	Queries uint64
	// CacheHits is how many of those were answered from the result cache.
	CacheHits uint64
	// Collapsed is how many were answered by joining another query's
	// in-flight computation (singleflight): identical concurrent misses
	// share one peel instead of recomputing it per caller.
	Collapsed uint64
	// Errors counts queries that returned an error (invalid or cancelled).
	Errors uint64
	// Computed counts searches actually executed — peels run, as opposed
	// to queries served — including peels that ended in an error or were
	// aborted when their last waiter left. Under a thundering herd of
	// identical misses, Queries grows with the herd while Computed grows
	// by one.
	Computed uint64
	// Fused counts queries computed through SearchBatch's fused path —
	// admitted, deduplicated, and peeled as part of a component-grouped
	// batch against one snapshot — as opposed to solo Search computations
	// (which show up in Computed only). Batch duplicates served off a
	// fused leader's peel count toward Collapsed, like singleflight
	// joins.
	Fused uint64
	// TimedOut counts queries whose deadline fired: peel-timeouts (the
	// search returned a best-so-far partial with Result.TimedOut set) and
	// queue-timeouts (the budget expired before a worker slot freed up;
	// the caller got ErrQueueTimeout and no work was done). The two are
	// distinguishable at the call site by the error; here they share one
	// counter because both mean "the deadline, not the answer, ended this
	// query". Queue-timeouts also count toward Errors.
	TimedOut uint64
	// Rejected counts queries the serving tier refused before doing any
	// search work — failed admission checks other than load shedding
	// (malformed requests, budgets too small to cover the estimated
	// peel). Recorded via NoteRejected by the tier above the engine; not
	// included in Queries.
	Rejected uint64
	// Shed counts queries refused specifically to protect the service
	// under overload (bounded-queue overflow, token-bucket exhaustion,
	// overload-state shedding). Recorded via NoteShed; not included in
	// Queries.
	Shed uint64
	// StaleServed counts queries answered from a superseded version of
	// their component through LookupStale — the degraded-mode answers the
	// serving tier hands out instead of failing under pressure. A
	// LookupStale answer at the component's CURRENT version is a plain
	// cache hit, not counted here: an Apply that never touched the
	// component leaves its answer exact. Included in Queries (the query
	// was answered), not in CacheHits (the answer was not current).
	StaleServed uint64
	// Invalidated and Retained count components across all Applies:
	// Invalidated components were superseded (their cached results,
	// sub-CSRs, and flights became unreachable on the fresh path),
	// Retained components were carried verbatim into the next snapshot
	// with caches and flights intact. Their ratio is the direct measure
	// of how component-scoped invalidation is paying off under the
	// current churn pattern.
	Invalidated, Retained uint64
	// DurableEpoch, LastCheckpoint, CheckpointFailures, and
	// WALSyncErrors are the durability counters of an engine opened
	// through OpenDurable (all zero without a WAL): the newest epoch the
	// write-ahead log considers durable under its fsync policy, the
	// epoch of the newest successful checkpoint, how many periodic
	// checkpoints have failed, and how many background fsyncs have
	// failed.
	DurableEpoch       uint64
	LastCheckpoint     uint64
	CheckpointFailures uint64
	WALSyncErrors      uint64
	// CacheEntries is the current number of cached results.
	CacheEntries int
	// P50, P95, and P99 are latency percentiles over a sliding window of
	// the most recent executed (non-cache-hit) searches; zero until the
	// first search completes.
	P50, P95, P99 time.Duration
}

// statsCollector accumulates counters across cache-line-padded stripes.
// The hot recorders (recordHit, recordServed) are single atomic adds on
// a stripe chosen per worker-scratch bundle, so concurrent queries on
// different workers never touch the same cache line — there is no stats
// mutex on the serving path at all. Latencies go into small per-stripe
// rings guarded by per-stripe mutexes; only computed searches (which
// just spent microseconds-to-milliseconds peeling) pay that lock, and
// stripes keep it uncontended.
//
// Each latency sample carries a global sequence number (one shared
// atomic, paid only by computed searches), and snapshot() discards
// samples more than latencyWindow recordings old. Without that, a
// stripe that goes idle would hold its stale samples forever and keep
// skewing the percentiles long after the workload shifted. The window
// therefore never includes anything older than the most recent
// latencyWindow recordings; how much of that window is retained depends
// on how recordings spread over stripes — between latencyWindow (evenly
// spread) and the per-stripe ring size (everything on one stripe, at
// least minStripeRing).
type statsCollector struct {
	seq     atomic.Uint64 // global latency-sample sequence
	_       [120]byte
	stripes []statStripe
}

// latSample is one latency recording: its duration and its position in
// the global recording order.
type latSample struct {
	d   time.Duration
	seq uint64
}

// statStripe is one stripe's counters and latency ring. The pad after
// the atomics keeps two stripes' counters from sharing a cache line
// (the slice backing array lays stripes out contiguously).
type statStripe struct {
	queries     atomic.Uint64
	cacheHits   atomic.Uint64
	collapsed   atomic.Uint64
	errors      atomic.Uint64
	computed    atomic.Uint64
	fused       atomic.Uint64
	timedOut    atomic.Uint64
	rejected    atomic.Uint64
	shed        atomic.Uint64
	staleServed atomic.Uint64
	_           [48]byte // pad the 80 counter bytes out to two cache lines

	//dmcs:striped
	mu      sync.Mutex
	ring    []latSample
	ringLen int // filled entries, <= len(ring)
	ringPos int // next write position
	_       [64]byte
}

// newStatsCollector builds a collector with nextPow2(stripes) stripes,
// each owning an equal slice of the global latency window.
func newStatsCollector(stripes int) *statsCollector {
	n := nextPow2(max(1, stripes))
	ringLen := latencyWindow / n
	if ringLen < minStripeRing {
		ringLen = minStripeRing
	}
	s := &statsCollector{stripes: make([]statStripe, n)}
	for i := range s.stripes {
		s.stripes[i].ring = make([]latSample, ringLen)
	}
	return s
}

// numStripes returns the stripe count (a power of two).
func (s *statsCollector) numStripes() int { return len(s.stripes) }

// recordHit counts one query answered from the result cache.
//
//dmcs:hotpath
func (s *statsCollector) recordHit(stripe int) {
	st := &s.stripes[stripe]
	st.queries.Add(1)
	st.cacheHits.Add(1)
}

// recordServed counts one query answered by a completed computation —
// its own (joined=false) or one it collapsed onto (joined=true).
//
//dmcs:hotpath
func (s *statsCollector) recordServed(stripe int, joined bool) {
	st := &s.stripes[stripe]
	st.queries.Add(1)
	if joined {
		st.collapsed.Add(1)
	}
}

// recordFused counts one query computed through the fused batch path.
//
//dmcs:hotpath
func (s *statsCollector) recordFused(stripe int) {
	s.stripes[stripe].fused.Add(1)
}

// recordError counts one query that returned an error.
func (s *statsCollector) recordError(stripe int) {
	st := &s.stripes[stripe]
	st.queries.Add(1)
	st.errors.Add(1)
}

// recordTimedOut counts one deadline-ended query (queue- or
// peel-timeout). It is an add-on counter: the caller also records the
// query's outcome (recordServed for a partial, recordError for a
// queue-timeout).
//
//dmcs:hotpath
func (s *statsCollector) recordTimedOut(stripe int) {
	s.stripes[stripe].timedOut.Add(1)
}

// recordRejected counts one admission rejection by the serving tier.
func (s *statsCollector) recordRejected(stripe int) {
	s.stripes[stripe].rejected.Add(1)
}

// recordShed counts one load-shed query.
func (s *statsCollector) recordShed(stripe int) {
	s.stripes[stripe].shed.Add(1)
}

// recordStaleServed counts one query answered with a superseded epoch's
// cached result.
//
//dmcs:hotpath
func (s *statsCollector) recordStaleServed(stripe int) {
	st := &s.stripes[stripe]
	st.queries.Add(1)
	st.staleServed.Add(1)
}

// recordSearch counts one executed peel and, when the peel ran to its
// natural end (complete), records its latency in the stripe's ring.
// Errored or abandoned peels still count toward Computed — the work was
// done — but their wall-clock reflects when the failure landed, not
// search cost, so they are kept out of the percentile window. Note this
// tracks computations, not queries: the caller that triggered the peel
// separately records itself via recordServed.
//
//dmcs:hotpath
func (s *statsCollector) recordSearch(stripe int, d time.Duration, complete bool) {
	st := &s.stripes[stripe]
	st.computed.Add(1)
	if !complete {
		return
	}
	seq := s.seq.Add(1)
	st.mu.Lock()
	st.ring[st.ringPos] = latSample{d: d, seq: seq}
	st.ringPos = (st.ringPos + 1) % len(st.ring)
	if st.ringLen < len(st.ring) {
		st.ringLen++
	}
	st.mu.Unlock()
}

// snapshot sums the striped counters and computes nearest-rank
// percentiles over the union of the per-stripe latency windows,
// discarding samples older than the most recent latencyWindow
// recordings (an idle stripe's leftovers must not haunt the tail).
func (s *statsCollector) snapshot(cacheEntries int) Stats {
	st := Stats{CacheEntries: cacheEntries}
	var samples []latSample
	for i := range s.stripes {
		sp := &s.stripes[i]
		st.Queries += sp.queries.Load()
		st.CacheHits += sp.cacheHits.Load()
		st.Collapsed += sp.collapsed.Load()
		st.Errors += sp.errors.Load()
		st.Computed += sp.computed.Load()
		st.Fused += sp.fused.Load()
		st.TimedOut += sp.timedOut.Load()
		st.Rejected += sp.rejected.Load()
		st.Shed += sp.shed.Load()
		st.StaleServed += sp.staleServed.Load()
		sp.mu.Lock()
		samples = append(samples, sp.ring[:sp.ringLen]...)
		sp.mu.Unlock()
	}
	maxSeq := s.seq.Load()
	lat := make([]time.Duration, 0, len(samples))
	for _, smp := range samples {
		if smp.seq+latencyWindow > maxSeq {
			lat = append(lat, smp.d)
		}
	}
	if len(lat) == 0 {
		return st
	}
	slices.Sort(lat)
	st.P50 = lat[ceilRank(len(lat), 50)]
	st.P95 = lat[ceilRank(len(lat), 95)]
	st.P99 = lat[ceilRank(len(lat), 99)]
	return st
}

// ceilRank returns the 0-based index of the p-th percentile under the
// ceiling nearest-rank definition: the smallest sample below which at
// least p% of the window lies. The previous floor formula
// (lat[(n-1)*p/100]) collapsed P95 onto interior ranks for small windows
// — with n < 20 it can never select the last sample, so P95 underreported
// tail latency exactly when the window was smallest.
func ceilRank(n, p int) int {
	r := (n*p + 99) / 100
	if r < 1 {
		r = 1
	}
	return r - 1
}
