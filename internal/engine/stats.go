package engine

import (
	"slices"
	"sync"
	"time"
)

// latencyWindow is how many recent per-query latencies the percentile
// estimates are computed over. A fixed window keeps Stats() O(window) and
// the engine's memory bounded regardless of how many queries it serves.
const latencyWindow = 4096

// Stats is a point-in-time snapshot of an Engine's counters.
type Stats struct {
	// Queries is the number of queries answered, including cache hits and
	// queries that failed validation.
	Queries uint64
	// CacheHits is how many of those were answered from the result cache.
	CacheHits uint64
	// Errors counts queries that returned an error (invalid or cancelled).
	Errors uint64
	// CacheEntries is the current number of cached results.
	CacheEntries int
	// P50 and P95 are latency percentiles over a sliding window of the
	// most recent executed (non-cache-hit) searches; zero until the first
	// search completes.
	P50, P95 time.Duration
}

// statsCollector accumulates counters and a ring buffer of recent search
// latencies under one mutex. Per-query overhead is a short critical
// section; percentile sorting happens only in snapshot().
type statsCollector struct {
	mu        sync.Mutex
	queries   uint64
	cacheHits uint64
	errors    uint64
	ring      [latencyWindow]time.Duration
	ringLen   int // filled entries, ≤ latencyWindow
	ringPos   int // next write position
}

func (s *statsCollector) recordHit() {
	s.mu.Lock()
	s.queries++
	s.cacheHits++
	s.mu.Unlock()
}

func (s *statsCollector) recordError() {
	s.mu.Lock()
	s.queries++
	s.errors++
	s.mu.Unlock()
}

func (s *statsCollector) recordSearch(d time.Duration) {
	s.mu.Lock()
	s.queries++
	s.ring[s.ringPos] = d
	s.ringPos = (s.ringPos + 1) % latencyWindow
	if s.ringLen < latencyWindow {
		s.ringLen++
	}
	s.mu.Unlock()
}

// snapshot copies the counters and computes nearest-rank percentiles over
// the latency window.
func (s *statsCollector) snapshot(cacheEntries int) Stats {
	s.mu.Lock()
	st := Stats{
		Queries:      s.queries,
		CacheHits:    s.cacheHits,
		Errors:       s.errors,
		CacheEntries: cacheEntries,
	}
	lat := make([]time.Duration, s.ringLen)
	copy(lat, s.ring[:s.ringLen])
	s.mu.Unlock()
	if len(lat) == 0 {
		return st
	}
	slices.Sort(lat)
	st.P50 = lat[ceilRank(len(lat), 50)]
	st.P95 = lat[ceilRank(len(lat), 95)]
	return st
}

// ceilRank returns the 0-based index of the p-th percentile under the
// ceiling nearest-rank definition: the smallest sample below which at
// least p% of the window lies. The previous floor formula
// (lat[(n-1)*p/100]) collapsed P95 onto interior ranks for small windows
// — with n < 20 it can never select the last sample, so P95 underreported
// tail latency exactly when the window was smallest.
func ceilRank(n, p int) int {
	r := (n*p + 99) / 100
	if r < 1 {
		r = 1
	}
	return r - 1
}
