package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// TestHotKeyHerdCollapses is the singleflight contract: a thundering
// herd of identical cold queries costs one peel. Every herd member gets
// the serial answer, but the computed-search counter must show exactly
// one computation — the rest either joined the in-flight one or hit the
// entry it published.
func TestHotKeyHerdCollapses(t *testing.T) {
	g := smallQueryEngineGraph(4, 400)
	e := New(g, Options{Workers: 4})
	ctx := context.Background()
	const herd = 32
	results := make([]*dmcs.Result, herd)
	errs := make([]error, herd)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i], errs[i] = e.Search(ctx, Query{Nodes: []graph.Node{0}})
		}(i)
	}
	close(gate)
	wg.Wait()

	want, err := dmcs.Search(g, []graph.Node{0}, dmcs.VariantFPA, dmcs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("herd member %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Community, want.Community) || results[i].Score != want.Score {
			t.Fatalf("herd member %d: (%v, %v) != serial (%v, %v)",
				i, results[i].Community, results[i].Score, want.Community, want.Score)
		}
	}
	st := e.Stats()
	if st.Computed != 1 {
		t.Errorf("Computed = %d, want 1: duplicate in-flight misses must collapse to one peel", st.Computed)
	}
	if st.Queries != herd {
		t.Errorf("Queries = %d, want %d", st.Queries, herd)
	}
	if st.CacheHits+st.Collapsed != herd-1 {
		t.Errorf("CacheHits+Collapsed = %d+%d, want %d: every non-leader must join or hit",
			st.CacheHits, st.Collapsed, herd-1)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d, want 0", st.Errors)
	}
}

// TestSingleflightJoinVsCancel pins the cancellation semantics of
// collapsed queries: a joiner's context cancels only its own wait — it
// returns ctx.Err() promptly while the computation keeps running for the
// remaining waiters — and once the last waiter leaves, the shared
// computation is aborted rather than running to completion for nobody.
// Partial results from the abandoned peel must never be cached.
func TestSingleflightJoinVsCancel(t *testing.T) {
	// NCA on a 2000-node LFR graph takes well over a second serially, so
	// staggered cancellations at tens of milliseconds land mid-peel.
	res := testGraph(t, 2000)
	e := New(res.G, Options{Workers: 2})
	q := Query{Nodes: []graph.Node{0}, Variant: dmcs.VariantNCA}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	outcomes := make(chan outcome, 3)
	launched := make(chan struct{}, 3)
	search := func(ctx context.Context) {
		launched <- struct{}{}
		start := time.Now()
		_, err := e.Search(ctx, q)
		outcomes <- outcome{err: err, elapsed: time.Since(start)}
	}
	go search(leaderCtx)
	<-launched
	time.Sleep(20 * time.Millisecond) // let the leader's peel start

	j1Ctx, cancelJ1 := context.WithCancel(context.Background())
	defer cancelJ1()
	j2Ctx, cancelJ2 := context.WithCancel(context.Background())
	defer cancelJ2()
	go search(j1Ctx)
	go search(j2Ctx)
	<-launched
	<-launched
	time.Sleep(20 * time.Millisecond) // let the joiners reach their wait

	// Cancel one joiner: it must come back promptly with its own
	// ctx.Err() while the other joiner and the leader stay blocked on the
	// still-running computation.
	cancelStart := time.Now()
	cancelJ1()
	first := <-outcomes
	if !errors.Is(first.err, context.Canceled) {
		t.Fatalf("cancelled joiner: err = %v, want context.Canceled", first.err)
	}
	if waited := time.Since(cancelStart); waited > 2*time.Second {
		t.Fatalf("cancelled joiner took %v to unwind its wait", waited)
	}
	select {
	case o := <-outcomes:
		t.Fatalf("another waiter returned (%v) although its context is live and the peel is not done", o.err)
	case <-time.After(50 * time.Millisecond):
	}

	// Cancel the rest: the last departure aborts the shared computation.
	cancelJ2()
	cancelLeader()
	for i := 0; i < 2; i++ {
		o := <-outcomes
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("waiter %d: err = %v, want context.Canceled", i, o.err)
		}
	}
	st := e.Stats()
	if st.Errors != 3 {
		t.Errorf("Errors = %d, want 3 (every caller cancelled)", st.Errors)
	}
	if st.CacheEntries != 0 {
		t.Errorf("CacheEntries = %d, want 0: an abandoned peel's partial result must not be cached", st.CacheEntries)
	}
}

// TestJoinerOwnClockOnTimeout pins the deadline fairness of collapsed
// queries: when a shared computation expires, that deadline was measured
// from the leader's start, so a joiner does not inherit the leader's
// partial — it recomputes under its own clock, exactly as if it had run
// alone, and neither partial is ever cached.
func TestJoinerOwnClockOnTimeout(t *testing.T) {
	res := testGraph(t, 2000) // NCA here takes >1s, so a 60ms budget always expires
	e := New(res.G, Options{Workers: 2})
	q := Query{Nodes: []graph.Node{0}, Variant: dmcs.VariantNCA,
		Opts: dmcs.Options{Timeout: 60 * time.Millisecond}}
	type out struct {
		r   *dmcs.Result
		err error
	}
	outs := make(chan out, 2)
	go func() { r, err := e.Search(context.Background(), q); outs <- out{r, err} }()
	time.Sleep(15 * time.Millisecond) // land the second caller mid-flight
	go func() { r, err := e.Search(context.Background(), q); outs <- out{r, err} }()
	for i := 0; i < 2; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatalf("caller %d: %v", i, o.err)
		}
		if !o.r.TimedOut {
			t.Fatalf("caller %d: expected a TimedOut partial under a 60ms NCA budget", i)
		}
	}
	st := e.Stats()
	if st.Computed != 2 {
		t.Errorf("Computed = %d, want 2: the joiner must recompute on its own clock, not adopt the leader's partial", st.Computed)
	}
	if st.Collapsed != 0 {
		t.Errorf("Collapsed = %d, want 0: a timed-out flight outcome must not count as a collapse", st.Collapsed)
	}
	if st.CacheEntries != 0 {
		t.Errorf("CacheEntries = %d, want 0: partials must never be cached", st.CacheEntries)
	}
}

// TestStripedStatsExactTotals proves the striping never approximates:
// with concurrent recorders spread over the stripes, snapshot() sums
// must equal the number of recorded events exactly.
func TestStripedStatsExactTotals(t *testing.T) {
	s := newStatsCollector(8)
	const goroutines = 16
	const perG = 5000 // divisible by 5: each event kind gets perG/5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stripe := g % s.numStripes()
			for i := 0; i < perG; i++ {
				switch i % 5 {
				case 0:
					s.recordHit(stripe)
				case 1:
					s.recordServed(stripe, false)
				case 2:
					s.recordServed(stripe, true)
				case 3:
					s.recordError(stripe)
				case 4:
					s.recordSearch(stripe, time.Duration(i+1)*time.Microsecond, true)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.snapshot(0)
	perKind := uint64(goroutines * perG / 5)
	if want := 4 * perKind; st.Queries != want { // hits + 2x served + errors
		t.Errorf("Queries = %d, want %d", st.Queries, want)
	}
	if st.CacheHits != perKind {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, perKind)
	}
	if st.Collapsed != perKind {
		t.Errorf("Collapsed = %d, want %d", st.Collapsed, perKind)
	}
	if st.Errors != perKind {
		t.Errorf("Errors = %d, want %d", st.Errors, perKind)
	}
	if st.Computed != perKind {
		t.Errorf("Computed = %d, want %d", st.Computed, perKind)
	}
	if st.P50 <= 0 || st.P95 < st.P50 {
		t.Errorf("implausible percentiles: %+v", st)
	}
}

// TestStatsStaleStripeExcluded pins the recency semantics of the
// latency window: once latencyWindow newer searches have been recorded
// (on any stripe), an idle stripe's old samples fall out of the
// percentiles instead of haunting the tail forever.
func TestStatsStaleStripeExcluded(t *testing.T) {
	s := newStatsCollector(2)
	// Ten slow searches land on stripe 0, then the workload shifts: a
	// full window of fast searches lands on stripe 1.
	for i := 0; i < 10; i++ {
		s.recordSearch(0, time.Second, true)
	}
	for i := 0; i < latencyWindow; i++ {
		s.recordSearch(1, time.Microsecond, true)
	}
	st := s.snapshot(0)
	if st.P95 != time.Microsecond {
		t.Errorf("P95 = %v, want 1µs: stripe 0's stale 1s samples must be outside the recency window", st.P95)
	}
	// Before the window has rolled over, old samples still count: five
	// slow samples among 55 sit above the 95th percentile rank.
	s2 := newStatsCollector(2)
	for i := 0; i < 5; i++ {
		s2.recordSearch(0, time.Second, true)
	}
	for i := 0; i < 50; i++ {
		s2.recordSearch(1, time.Microsecond, true)
	}
	if st := s2.snapshot(0); st.P95 != time.Second {
		t.Errorf("P95 = %v, want 1s: recent slow samples must still dominate the tail", st.P95)
	}
}

// TestShardedCacheRacesApply stress-races the whole serving surface
// under -race: sharded get/add via Search, direct clear(), and Apply's
// epoch bumps (which clear too), all concurrently. Beyond being
// race-free, the end state must be exact: the engine's Queries counter
// equals the number of Search calls made, no query ever errors (the
// toggled edge is chord-covered, so components never split), and the
// cache never exceeds its capacity.
func TestShardedCacheRacesApply(t *testing.T) {
	const comps, size = 8, 40
	e := New(smallQueryEngineGraph(comps, size), Options{Workers: 4, CacheSize: 32})
	ctx := context.Background()
	const searchers = 4
	const perSearcher = 300
	var wg sync.WaitGroup
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nodes := make([]graph.Node, 1)
			for i := 0; i < perSearcher; i++ {
				nodes[0] = graph.Node(((s*perSearcher + i) % comps) * size)
				if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
					t.Errorf("searcher %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(2)
	go func() { // epoch-bumping applier
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var b Batch
			if i%2 == 0 {
				b.RemoveEdge(0, 1)
			} else {
				b.AddEdge(0, 1)
			}
			e.Apply(b)
		}
	}()
	go func() { // direct clear + stats reader
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.cache.clear()
			_ = e.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	bg.Wait()

	st := e.Stats()
	if want := uint64(searchers * perSearcher); st.Queries != want {
		t.Errorf("Queries = %d, want exactly %d", st.Queries, want)
	}
	if st.Errors != 0 {
		t.Errorf("Errors = %d, want 0", st.Errors)
	}
	if n := e.cache.len(); n > 32 {
		t.Errorf("cache holds %d entries, capacity 32", n)
	}
}

// TestEngineMatchesSerialAcrossServingConfigs is the determinism
// contract of the serving rebuild: for every variant, the engine's
// answer is bit-identical to serial dmcs.SearchSub against the same
// snapshot — regardless of worker count (which also varies the shard and
// stripe counts), cache state, or whether a query was computed, served
// from cache, or collapsed onto a concurrent identical query.
func TestEngineMatchesSerialAcrossServingConfigs(t *testing.T) {
	res := testGraph(t, 300)
	ref := NewSnapshot(res.G)
	arena := dmcs.NewArena()
	serial := func(q Query) (*dmcs.Result, error) {
		nodes := normalizeNodes(q.Nodes)
		id, err := ref.componentIndex(nodes)
		if err != nil {
			return nil, err
		}
		return dmcs.SearchSub(arena, ref.SubCSR(id), nodes, ref.comps[id], q.Variant, canonicalOptions(q.Opts))
	}

	var qs []Query
	for _, v := range []dmcs.Variant{dmcs.VariantFPA, dmcs.VariantNCA, dmcs.VariantNCADR, dmcs.VariantFPADMG} {
		qs = append(qs,
			Query{Nodes: []graph.Node{0}, Variant: v},
			Query{Nodes: []graph.Node{5, 40}, Variant: v},
		)
	}
	qs = append(qs,
		Query{Nodes: []graph.Node{7}, Opts: dmcs.Options{LayerPruning: true}},
		Query{Nodes: []graph.Node{7}, Opts: dmcs.Options{Objective: dmcs.ClassicModularity}},
		Query{Nodes: []graph.Node{7}, Opts: dmcs.Options{Objective: dmcs.GeneralizedModularityDensity, Chi: 2}},
	)
	want := make([]*dmcs.Result, len(qs))
	for i, q := range qs {
		w, err := serial(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	for _, workers := range []int{1, 2, 8} {
		for _, cacheSize := range []int{-1, 64} {
			e := New(res.G, Options{Workers: workers, CacheSize: cacheSize})
			// Two rounds over the batch (second round hits when caching)
			// plus a concurrent same-query blast to force joining.
			for round := 0; round < 2; round++ {
				got := e.SearchBatch(context.Background(), qs)
				for i := range qs {
					if got[i].Err != nil {
						t.Fatalf("workers=%d cache=%d round=%d query %d: %v",
							workers, cacheSize, round, i, got[i].Err)
					}
					if !reflect.DeepEqual(got[i].Result.Community, want[i].Community) ||
						got[i].Result.Score != want[i].Score ||
						got[i].Result.Iterations != want[i].Iterations {
						t.Fatalf("workers=%d cache=%d round=%d query %d: engine (%v, %v) != SearchSub (%v, %v)",
							workers, cacheSize, round, i,
							got[i].Result.Community, got[i].Result.Score,
							want[i].Community, want[i].Score)
					}
				}
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					r, err := e.Search(context.Background(), qs[3]) // NCA: slow enough to join
					if err != nil {
						t.Errorf("concurrent blast: %v", err)
						return
					}
					if !reflect.DeepEqual(r.Community, want[3].Community) || r.Score != want[3].Score {
						t.Errorf("concurrent blast: (%v, %v) != SearchSub (%v, %v)",
							r.Community, r.Score, want[3].Community, want[3].Score)
					}
				}()
			}
			wg.Wait()
		}
	}
}
