package engine

// Chained differential test for component-scoped epochs: a long
// interleaving of Apply and queries in which every Apply touches exactly
// one component. Three properties are checked at every step:
//
//  1. Untouched components keep their (key, version) stamps across the
//     Apply and their queries are answered from cache — byte-for-byte
//     the same *dmcs.Result pointer that was cached before the Apply.
//  2. The touched component is restamped and its next answer bit-matches
//     a from-scratch serial rebuild on the new snapshot (a fresh stamp
//     pins w_G to the live graph, so the serial reference on the full
//     CSR is the exact oracle).
//  3. A query racing the Apply returns either its component's pre-Apply
//     answer or its post-Apply answer — never a hybrid — restated per
//     component version: untouched components must return their pre
//     answer no matter how the race lands.

import (
	"context"
	"sync"
	"testing"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// compStamp is one component's recorded answer and identity at the time
// it was last (re)computed.
type compStamp struct {
	res *dmcs.Result
	key uint64
	ver uint64
}

func TestComponentEpochChainedDifferential(t *testing.T) {
	const comps, size = 6, 24
	// The cache is sized so nothing is ever evicted: the pointer-equality
	// assertions below distinguish "served from cache" from "recomputed
	// to the same bits", which only works if entries cannot age out.
	e := New(smallQueryEngineGraph(comps, size), Options{Workers: 4, CacheSize: 4096})
	ctx := context.Background()

	qs := make([]Query, comps)
	for c := 0; c < comps; c++ {
		qs[c] = Query{Nodes: []graph.Node{graph.Node(c * size)}}
	}

	// Seed the cache and record each component's stamped answer and
	// (key, version) identity.
	answers := make([]compStamp, comps)
	snap := e.Snapshot()
	for c := range qs {
		res, err := e.Search(ctx, qs[c])
		if err != nil {
			t.Fatal(err)
		}
		id, err := snap.ComponentID(qs[c].Nodes)
		if err != nil {
			t.Fatal(err)
		}
		answers[c] = compStamp{res: res, key: snap.ComponentKey(id), ver: snap.ComponentVersion(id)}
	}

	rounds := 3 * comps
	if testing.Short() {
		rounds = comps
	}
	toggles := make([]int, comps)
	for r := 0; r < rounds; r++ {
		touched := r % comps
		base := graph.Node(touched * size)

		// The touching batch toggles a chord inside the touched component
		// only; connectivity is preserved by the ring.
		var b Batch
		if toggles[touched]%2 == 0 {
			b.RemoveEdge(base, base+7)
		} else {
			b.AddEdge(base, base+7)
		}
		toggles[touched]++

		// Race one round of queries against the Apply (property 3), then
		// settle and check properties 1 and 2 deterministically.
		raceRes := make([]*dmcs.Result, comps)
		raceErr := make([]error, comps)
		var wg sync.WaitGroup
		for c := range qs {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				raceRes[c], raceErr[c] = e.Search(ctx, qs[c])
			}(c)
		}
		st, _ := e.Apply(b)
		post := e.Snapshot()
		wg.Wait()

		postSerial := serialOn(t, post, qs[touched])
		for c := range qs {
			if raceErr[c] != nil {
				t.Fatalf("round %d comp %d racing query: %v", r, c, raceErr[c])
			}
			if c == touched {
				// Touched: pre answer (the cached result at the superseded
				// version) or post answer (serial on the new snapshot) —
				// nothing else.
				if raceRes[c] != answers[c].res && !sameResult(raceRes[c], postSerial) {
					t.Fatalf("round %d: touched comp %d racing query is a hybrid: (%v, %v)",
						r, c, raceRes[c].Community, raceRes[c].Score)
				}
			} else if raceRes[c] != answers[c].res {
				// Untouched: the version never moved, so only the cached
				// pre answer is a legal outcome, whichever side of the
				// swap the query landed on.
				t.Fatalf("round %d: untouched comp %d racing query did not return its cached answer", r, c)
			}
		}

		// Property 1: every untouched component kept its stamps, and a
		// settled query is a cache hit returning the identical result.
		hitsBefore := e.Stats().CacheHits
		for c := range qs {
			id, err := post.ComponentID(qs[c].Nodes)
			if err != nil {
				t.Fatal(err)
			}
			key, ver := post.ComponentKey(id), post.ComponentVersion(id)
			if c == touched {
				if key == answers[c].key && ver == answers[c].ver {
					t.Fatalf("round %d: touched comp %d kept stamp (key=%d ver=%d)", r, c, key, ver)
				}
				if ver != st.Epoch {
					t.Fatalf("round %d: touched comp %d version %d, want epoch %d", r, c, ver, st.Epoch)
				}
				continue
			}
			if key != answers[c].key || ver != answers[c].ver {
				t.Fatalf("round %d: untouched comp %d restamped: (%d,%d) -> (%d,%d)",
					r, c, answers[c].key, answers[c].ver, key, ver)
			}
			res, err := e.Search(ctx, qs[c])
			if err != nil {
				t.Fatal(err)
			}
			if res != answers[c].res {
				t.Fatalf("round %d: untouched comp %d settled query missed the cache", r, c)
			}
		}
		if hits := e.Stats().CacheHits; hits < hitsBefore+uint64(comps-1) {
			t.Fatalf("round %d: cache hits %d -> %d, want +%d untouched hits",
				r, hitsBefore, hits, comps-1)
		}

		// Property 2: the touched component's settled answer bit-matches a
		// from-scratch rebuild on the new snapshot.
		res, err := e.Search(ctx, qs[touched])
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(res, postSerial) {
			t.Fatalf("round %d: touched comp %d settled answer (%v, %v) != from-scratch rebuild (%v, %v)",
				r, touched, res.Community, res.Score, postSerial.Community, postSerial.Score)
		}
		id, err := post.ComponentID(qs[touched].Nodes)
		if err != nil {
			t.Fatal(err)
		}
		answers[touched] = compStamp{res: res, key: post.ComponentKey(id), ver: post.ComponentVersion(id)}
	}
}
