package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// TestFusedBatchMatchesPerQuerySerial is the fused-path half of the
// differential obligation: a skewed, duplicate-heavy, mixed-variant
// batch through the fused SearchBatch must return exactly what issuing
// each query alone through serial dmcs returns.
func TestFusedBatchMatchesPerQuerySerial(t *testing.T) {
	res := testGraph(t, 500)
	rng := rand.New(rand.NewSource(9))
	var qs []Query
	// Skew: many queries on one node's component, duplicates included.
	hot := graph.Node(rng.Intn(res.G.NumNodes()))
	for i := 0; i < 24; i++ {
		qs = append(qs, Query{Nodes: []graph.Node{hot}})
	}
	for i := 0; i < 16; i++ {
		u := graph.Node(rng.Intn(res.G.NumNodes()))
		v := dmcs.VariantFPA
		var opts dmcs.Options
		switch i % 4 {
		case 1:
			v = dmcs.VariantNCA
		case 2:
			opts.LayerPruning = true
		case 3:
			v = dmcs.VariantFPADMG
			opts.Objective = dmcs.ClassicModularity
		}
		qs = append(qs, Query{Nodes: []graph.Node{u}, Variant: v, Opts: opts})
	}
	qs = append(qs, Query{}) // empty query: must error, not derail the batch

	e := New(res.G, Options{Workers: 4})
	got := e.SearchBatch(context.Background(), qs)
	for i, q := range qs {
		want, wantErr := dmcs.Search(res.G, normalizeNodes(q.Nodes), q.Variant, q.Opts)
		if (got[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("query %d: err=%v, serial err=%v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got[i].Result.Score != want.Score ||
			got[i].Result.Iterations != want.Iterations ||
			!reflect.DeepEqual(got[i].Result.Community, want.Community) {
			t.Fatalf("query %d (%v %v): fused result differs from serial", i, q.Nodes, q.Variant)
		}
	}
}

// TestFusedBatchDedupStats pins the fused path's accounting: B identical
// misses in one batch cost one peel — one Fused/Computed count, B-1
// Collapsed — and a pre-seeded cache answers the whole batch as hits.
func TestFusedBatchDedupStats(t *testing.T) {
	res := testGraph(t, 300)
	e := New(res.G, Options{Workers: 4})
	ctx := context.Background()

	const b = 8
	qs := make([]Query, b)
	for i := range qs {
		qs[i] = Query{Nodes: []graph.Node{7}}
	}
	out := e.SearchBatch(ctx, qs)
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("query %d: %v", i, out[i].Err)
		}
		if out[i].Result != out[0].Result {
			t.Fatalf("query %d: duplicates should share the leader's result pointer", i)
		}
	}
	st := e.Stats()
	if st.Queries != b || st.Fused != 1 || st.Computed != 1 || st.Collapsed != b-1 || st.CacheHits != 0 {
		t.Fatalf("after dup batch: queries=%d fused=%d computed=%d collapsed=%d hits=%d, want %d/1/1/%d/0",
			st.Queries, st.Fused, st.Computed, st.Collapsed, st.CacheHits, b, b-1)
	}

	// Same batch again: every query is a cache hit, nothing recomputes.
	e.SearchBatch(ctx, qs)
	st = e.Stats()
	if st.CacheHits != b || st.Fused != 1 || st.Computed != 1 {
		t.Fatalf("after cached batch: hits=%d fused=%d computed=%d, want %d/1/1", st.CacheHits, st.Fused, st.Computed, b)
	}
}

// TestFusedBatchErrorQueries checks invalid queries fail individually
// with the right error while the rest of the batch completes.
func TestFusedBatchErrorQueries(t *testing.T) {
	res := testGraph(t, 300)
	e := New(res.G, Options{Workers: 2})
	qs := []Query{
		{Nodes: []graph.Node{1}},
		{},
		{Nodes: []graph.Node{graph.Node(res.G.NumNodes() + 5)}},
		{Nodes: []graph.Node{2}},
	}
	out := e.SearchBatch(context.Background(), qs)
	if out[0].Err != nil || out[3].Err != nil {
		t.Fatalf("valid queries errored: %v, %v", out[0].Err, out[3].Err)
	}
	if !errors.Is(out[1].Err, dmcs.ErrEmptyQuery) {
		t.Fatalf("empty query err = %v, want ErrEmptyQuery", out[1].Err)
	}
	if !errors.Is(out[2].Err, ErrNodeOutOfRange) {
		t.Fatalf("out-of-range query err = %v, want ErrNodeOutOfRange", out[2].Err)
	}
	if st := e.Stats(); st.Errors != 2 {
		t.Fatalf("errors = %d, want 2", st.Errors)
	}
}

// TestFusedBatchCancelledContext: a context cancelled before the call
// fails every query with ctx.Err() instead of hanging or panicking.
func TestFusedBatchCancelledContext(t *testing.T) {
	res := testGraph(t, 300)
	e := New(res.G, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := e.SearchBatch(ctx, []Query{{Nodes: []graph.Node{1}}, {Nodes: []graph.Node{2}}})
	for i := range out {
		if !errors.Is(out[i].Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, out[i].Err)
		}
	}
}

// TestBatchFanoutWhenCacheDisabled: with the cache off there are no keys
// to dedup under, so SearchBatch takes the per-query fan-out and still
// matches serial results; the Fused counter stays zero.
func TestBatchFanoutWhenCacheDisabled(t *testing.T) {
	res := testGraph(t, 300)
	e := New(res.G, Options{Workers: 4, CacheSize: -1})
	qs := []Query{{Nodes: []graph.Node{3}}, {Nodes: []graph.Node{3}}, {Nodes: []graph.Node{11}}}
	out := e.SearchBatch(context.Background(), qs)
	for i, q := range qs {
		want, err := dmcs.Search(res.G, normalizeNodes(q.Nodes), q.Variant, q.Opts)
		if err != nil || out[i].Err != nil {
			t.Fatalf("query %d: %v / %v", i, err, out[i].Err)
		}
		if !reflect.DeepEqual(out[i].Result.Community, want.Community) {
			t.Fatalf("query %d: fanout result differs from serial", i)
		}
	}
	if st := e.Stats(); st.Fused != 0 {
		t.Fatalf("fused = %d on the cache-disabled path, want 0", st.Fused)
	}
}

// TestFusedBatchEmpty: the degenerate empty batch returns an empty slice
// without touching stats.
func TestFusedBatchEmpty(t *testing.T) {
	res := testGraph(t, 300)
	e := New(res.G, Options{Workers: 2})
	if out := e.SearchBatch(context.Background(), nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	if st := e.Stats(); st.Queries != 0 {
		t.Fatalf("empty batch recorded %d queries", st.Queries)
	}
}
