//go:build !race

package engine

// raceEnabled reports whether the race detector is compiled in; the
// zero-alloc assertions only hold without its instrumentation.
const raceEnabled = false
