package engine

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"dmcs/internal/graph"
)

// The parallel benchmark suite measures the contention story of the
// serving path with b.RunParallel across -cpu sweeps (cmd/bench runs it
// with -cpu 1,2,4,8 and keeps the -N suffix per entry):
//
//   - EngineParallelCacheHit: pure warm-cache serving. This path must
//     stay 0 allocs/op (CI gates it) and scale with cores — it takes no
//     global lock, only the key's cache shard and one stats stripe.
//   - EngineParallelMixed90/50: hit-ratio mixes. Misses recompute and
//     re-insert under shard locks while hits stream past on other
//     shards.
//   - EngineHotKeyHerd: every goroutine hammers the same rotating key,
//     so each rotation is a thundering herd on one cold key. The
//     peels/query metric shows singleflight collapsing the herd to ~one
//     computation per rotation.

// warmAllComponents primes the result cache with every component's
// single-node query.
func warmAllComponents(b *testing.B, e *Engine) {
	b.Helper()
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < benchComponents; c++ {
		nodes[0] = graph.Node(c * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
}

// prewarmScratch materializes p scratch bundles in the pool so the
// timed region allocates none (RunParallel runs up to GOMAXPROCS
// goroutines, each needing a bundle).
func prewarmScratch(e *Engine, p int) {
	bundles := make([]*workerScratch, p)
	for i := range bundles {
		bundles[i] = e.getScratch()
	}
	for _, ws := range bundles {
		e.putScratch(ws)
	}
}

// BenchmarkEngineParallelCacheHit is the parallel steady-state serving
// path: all goroutines answer distinct warm keys concurrently. Its
// allocs/op is the parallel zero-alloc contract — CI gates it at 0 for
// every -cpu count.
func BenchmarkEngineParallelCacheHit(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{})
	warmAllComponents(b, e)
	prewarmScratch(e, runtime.GOMAXPROCS(0))
	ctx := context.Background()
	var seed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		nodes := make([]graph.Node, 1)
		// Distinct per-goroutine stride so concurrent goroutines walk
		// different keys (and therefore different cache shards).
		i := seed.Add(1) * 7919
		for pb.Next() {
			i++
			nodes[0] = graph.Node(int(i%benchComponents) * benchCompSize)
			if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchmarkEngineParallelMixed serves hotPct% of queries from a small
// always-resident hot set and the rest from a cold keyspace larger than
// the cache, so the cold tail keeps missing and recomputing at steady
// state.
func benchmarkEngineParallelMixed(b *testing.B, hotPct uint64) {
	const hotComponents = 8
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{CacheSize: 64})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < hotComponents; c++ {
		nodes[0] = graph.Node(c * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
	prewarmScratch(e, runtime.GOMAXPROCS(0))
	var seed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		nodes := make([]graph.Node, 1)
		i := seed.Add(1) * 7919
		for pb.Next() {
			i++
			var comp uint64
			if i%100 < hotPct {
				comp = i % hotComponents
			} else {
				comp = hotComponents + i%(benchComponents-hotComponents)
			}
			nodes[0] = graph.Node(int(comp) * benchCompSize)
			if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if st := e.Stats(); st.Queries > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Queries)*100, "hit%")
	}
}

func BenchmarkEngineParallelMixed90(b *testing.B) { benchmarkEngineParallelMixed(b, 90) }
func BenchmarkEngineParallelMixed50(b *testing.B) { benchmarkEngineParallelMixed(b, 50) }

// BenchmarkEngineHotKeyHerd coordinates all goroutines onto one key at a
// time: a shared counter rotates the hot key every 256 queries, and the
// cache (64 entries against a 400-key space) has long evicted a key by
// the time it comes around again, so each rotation begins with a
// thundering herd of identical cold misses. Singleflight turns each herd
// into ~one peel; the peels/query metric reports the measured collapse.
func BenchmarkEngineHotKeyHerd(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{CacheSize: 64})
	warmAllComponents(b, e) // cycle everything once so steady-state eviction is in play
	prewarmScratch(e, runtime.GOMAXPROCS(0))
	ctx := context.Background()
	pre := e.Stats()
	var round atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		nodes := make([]graph.Node, 1)
		for pb.Next() {
			r := round.Add(1) >> 8
			nodes[0] = graph.Node(int(r%benchComponents) * benchCompSize)
			if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := e.Stats()
	if q := st.Queries - pre.Queries; q > 0 {
		b.ReportMetric(float64(st.Computed-pre.Computed)/float64(q), "peels/query")
	}
}
