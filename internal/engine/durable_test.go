package engine

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
	"dmcs/internal/wal"
)

// durableFixture builds the two-cluster graph the dynamic tests use.
func durableFixture() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+5), graph.Node(j+5))
		}
	}
	return b.Build()
}

func TestOpenDurableFreshRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := durableFixture()
	e, info, err := OpenDurable(g, wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{})
	if err != nil {
		t.Fatalf("OpenDurable fresh: %v", err)
	}
	if !info.FreshStart || info.RecoveredEpoch != 0 {
		t.Fatalf("fresh open reported %+v", info)
	}
	// The seed checkpoint makes a crash-before-first-checkpoint window
	// impossible.
	if ep, ok := e.wal.LastCheckpoint(); !ok || ep != 0 {
		t.Fatalf("seed checkpoint missing: %d,%v", ep, ok)
	}

	// Mutate across a few epochs: bridge the clusters, add a node, cut
	// the bridge again, change a weight.
	var b Batch
	b.AddEdge(4, 5)
	b.AddEdge(0, 10)
	if _, err := e.Apply(b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	b.RemoveEdge(4, 5)
	if _, err := e.Apply(b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	b.SetWeight(1, 2, 2.5)
	if _, err := e.Apply(b); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", e.Epoch())
	}
	if ep, ok := e.DurableEpoch(); !ok || ep != 3 {
		t.Fatalf("durable epoch = %d,%v, want 3 (SyncAlways)", ep, ok)
	}
	want := e.EncodeState(nil)
	res, err := e.Search(context.Background(), Query{Nodes: []graph.Node{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Restart with a nil graph: the durable state is authoritative.
	e2, info2, err := OpenDurable(nil, wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{})
	if err != nil {
		t.Fatalf("OpenDurable restart: %v", err)
	}
	defer e2.CloseWAL()
	if info2.FreshStart {
		t.Fatal("restart reported a fresh start")
	}
	if info2.RecoveredEpoch != 3 || info2.CheckpointEpoch != 0 || info2.RecordsReplayed != 3 {
		t.Fatalf("restart recovered %+v", info2)
	}
	if ri, ok := e2.Recovery(); !ok || ri != info2 {
		t.Fatalf("Recovery() = %+v,%v", ri, ok)
	}
	got := e2.EncodeState(nil)
	if !bytes.Equal(got, want) {
		t.Fatal("recovered state is not bit-identical to the pre-restart state")
	}
	res2, err := e2.Search(context.Background(), Query{Nodes: []graph.Node{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Score != res.Score || len(res2.Community) != len(res.Community) {
		t.Fatalf("recovered engine answers differently: %v vs %v", res2, res)
	}

	// Appends continue where the log stopped.
	b.Reset()
	b.AddEdge(4, 5)
	st, err := e2.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 {
		t.Fatalf("post-recovery epoch = %d, want 4", st.Epoch)
	}
}

func TestApplyFailsWhenWALAppendFails(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(durableFixture(), wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.CloseWAL()

	injected := errors.New("disk full")
	defer faultinject.Reset()
	faultinject.Set(faultinject.WALAppend, faultinject.Injection{Err: injected})
	var b Batch
	b.AddEdge(4, 5)
	if _, err := e.Apply(b); !errors.Is(err, injected) {
		t.Fatalf("Apply under append failure: %v", err)
	}
	// Nothing was published: the engine still serves the pre-batch epoch
	// and the pre-batch graph.
	if e.Epoch() != 0 {
		t.Fatalf("failed Apply published epoch %d", e.Epoch())
	}
	if _, err := e.Search(context.Background(), Query{Nodes: []graph.Node{0, 5}}); err == nil {
		t.Fatal("failed Apply leaked the bridged graph to queries")
	}
	// A plain append error (not a torn write) is retryable: the epoch was
	// not consumed.
	faultinject.Reset()
	st, err := e.Apply(b)
	if err != nil {
		t.Fatalf("retry after cleared failure: %v", err)
	}
	if st.Epoch != 1 {
		t.Fatalf("retry produced epoch %d, want 1", st.Epoch)
	}
}

func TestCheckpointFailureKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(durableFixture(), wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.CloseWAL()
	var b Batch
	b.AddEdge(4, 5)
	if _, err := e.Apply(b); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	faultinject.Set(faultinject.CheckpointWrite, faultinject.Injection{})
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint under injected failure succeeded")
	}
	if ep, ok := e.wal.LastCheckpoint(); !ok || ep != 0 {
		t.Fatalf("failed checkpoint moved LastCheckpoint to %d,%v", ep, ok)
	}
	faultinject.Reset()
	ep, err := e.Checkpoint()
	if err != nil || ep != 1 {
		t.Fatalf("checkpoint retry: %d, %v", ep, err)
	}
}

func TestReplayRefusesTamperedStamps(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(durableFixture(), wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Append a record whose component stamps do not match what replaying
	// its ops produces — the determinism oracle must refuse it.
	lg, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{
		Epoch:  1,
		Stamps: []wal.ComponentStamp{{Key: 999, Ver: 1}},
		Ops:    []graph.Delta{{Op: graph.DeltaAddEdge, U: 4, V: 5, W: 1}},
	}
	if err := lg.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenDurable(nil, wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{})
	if err == nil || !strings.Contains(err.Error(), "replay diverged") {
		t.Fatalf("tampered stamps recovered cleanly: %v", err)
	}
}

func TestRecordsWithoutCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	lg, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{Epoch: 1, Ops: []graph.Delta{{Op: graph.DeltaAddEdge, U: 0, V: 1, W: 1}}}
	if err := lg.Append(rec); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	if _, _, err := OpenDurable(nil, wal.Options{Dir: dir}, Options{}); err == nil {
		t.Fatal("records with no base checkpoint recovered cleanly")
	}
}

func TestPeriodicCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(durableFixture(), wal.Options{Dir: dir, Policy: wal.SyncAlways}, Options{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.CloseWAL()
	var b Batch
	for i := 0; i < 4; i++ {
		b.Reset()
		b.SetWeight(0, 1, float64(i)+2)
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// The trigger is asynchronous; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ep, ok := e.wal.LastCheckpoint(); ok && ep >= 2 {
			break
		}
		if time.Now().After(deadline) {
			ep, _ := e.wal.LastCheckpoint()
			t.Fatalf("periodic checkpoint never advanced past %d", ep)
		}
		time.Sleep(time.Millisecond)
	}
	st := e.Stats()
	if st.LastCheckpoint < 2 || st.DurableEpoch != 4 {
		t.Fatalf("stats report last-checkpoint=%d durable=%d", st.LastCheckpoint, st.DurableEpoch)
	}
}
