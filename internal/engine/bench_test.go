package engine

import (
	"context"
	"testing"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// smallQueryEngineGraph mirrors the internal/dmcs small-query fixture:
// many disjoint ring+chord communities, so each query's answer lives in a
// component that is a tiny fraction of the graph.
func smallQueryEngineGraph(numComp, compSize int) *graph.Graph {
	b := graph.NewBuilder(numComp * compSize)
	for c := 0; c < numComp; c++ {
		base := c * compSize
		for i := 0; i < compSize; i++ {
			u := graph.Node(base + i)
			b.AddEdge(u, graph.Node(base+(i+1)%compSize))
			b.AddEdge(u, graph.Node(base+(i+7)%compSize))
			b.AddEdge(u, graph.Node(base+(i+13)%compSize))
		}
	}
	return b.Build()
}

const (
	benchComponents = 400
	benchCompSize   = 80
)

// BenchmarkEngineSmallQueries measures computed (cache-off) engine
// serving of the interactive workload: per-op cost and allocations are
// the steady-state price of one small query against a large graph.
func BenchmarkEngineSmallQueries(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1, CacheSize: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{Nodes: []graph.Node{graph.Node((i % benchComponents) * benchCompSize)}}
		if _, err := e.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSmallQueriesNCA is the same computed workload through
// the articulation-recomputation variant.
func BenchmarkEngineSmallQueriesNCA(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1, CacheSize: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{
			Nodes:   []graph.Node{graph.Node((i % benchComponents) * benchCompSize)},
			Variant: dmcs.VariantNCA,
		}
		if _, err := e.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSmallQueriesCacheHit is the steady-state serving path: a
// warm LRU answers every query. The allocs/op of this benchmark is the
// engine's zero-alloc contract — CI gates it at 0.
func BenchmarkEngineSmallQueriesCacheHit(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < benchComponents; c++ {
		nodes[0] = graph.Node(c * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0] = graph.Node((i % benchComponents) * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
}
