package engine

import (
	"context"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// smallQueryEngineGraph mirrors the internal/dmcs small-query fixture:
// many disjoint ring+chord communities, so each query's answer lives in a
// component that is a tiny fraction of the graph.
func smallQueryEngineGraph(numComp, compSize int) *graph.Graph {
	b := graph.NewBuilder(numComp * compSize)
	for c := 0; c < numComp; c++ {
		base := c * compSize
		for i := 0; i < compSize; i++ {
			u := graph.Node(base + i)
			b.AddEdge(u, graph.Node(base+(i+1)%compSize))
			b.AddEdge(u, graph.Node(base+(i+7)%compSize))
			b.AddEdge(u, graph.Node(base+(i+13)%compSize))
		}
	}
	return b.Build()
}

const (
	benchComponents = 400
	benchCompSize   = 80
)

// BenchmarkEngineSmallQueries measures computed (cache-off) engine
// serving of the interactive workload: per-op cost and allocations are
// the steady-state price of one small query against a large graph.
func BenchmarkEngineSmallQueries(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1, CacheSize: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{Nodes: []graph.Node{graph.Node((i % benchComponents) * benchCompSize)}}
		if _, err := e.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSmallQueriesNCA is the same computed workload through
// the articulation-recomputation variant.
func BenchmarkEngineSmallQueriesNCA(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1, CacheSize: -1})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{
			Nodes:   []graph.Node{graph.Node((i % benchComponents) * benchCompSize)},
			Variant: dmcs.VariantNCA,
		}
		if _, err := e.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineApplyUpdates is the mutation-throughput benchmark: each
// op applies one 8-edge toggle batch confined to a single component of a
// large many-component graph. The per-op cost is dominated by the O(V+E)
// merge sweep; the incremental component maintenance contributes only the
// one re-flooded component.
func BenchmarkEngineApplyUpdates(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Consecutive op pairs (i even/odd) remove then restore the same
		// 8 edges, so the graph returns to its start state every two ops
		// and the measured cost never drifts with b.N.
		comp := (i / 2) % benchComponents
		base := graph.Node(comp * benchCompSize)
		var batch Batch
		for k := 0; k < 8; k++ {
			u := base + graph.Node(((i/2)*11+k*5)%(benchCompSize-1))
			if i%2 == 0 {
				batch.RemoveEdge(u, u+1)
			} else {
				batch.AddEdge(u, u+1)
			}
		}
		e.Apply(batch)
	}
}

// BenchmarkEngineQueryUnderChurn measures query latency while a
// background writer continuously applies mutation batches — the
// query-during-update serving cost, including the version swaps and
// per-version sub-CSR rebuilds the churn forces.
func BenchmarkEngineQueryUnderChurn(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 2})
	ctx := context.Background()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Churn component 0 only; queries spread across the rest, so
			// the benchmark isolates versioning overhead from result
			// changes. Each removed edge is restored on the next round,
			// keeping the workload steady however long the timer runs.
			var batch Batch
			u := graph.Node(((i / 2) * 7) % (benchCompSize - 1))
			if i%2 == 0 {
				batch.RemoveEdge(u, u+1)
			} else {
				batch.AddEdge(u, u+1)
			}
			e.Apply(batch)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{Nodes: []graph.Node{graph.Node((1 + i%(benchComponents-1)) * benchCompSize)}}
		if _, err := e.Search(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// benchmarkQueryUnderChurnProfile is the query-under-churn suite behind
// the BenchmarkEngineQueryUnderChurn* family: a background writer
// toggles edges inside the first `churned` components (sleeping `pace`
// between batches — 0 means continuous) while the measured loop sends
// `coldPct`% of its queries into the churned components and the rest
// into untouched ones. The cache is fully warmed first, so the reported
// hit_ratio is the direct measure of component-scoped invalidation:
// untouched components keep their versions across every Apply and must
// keep hitting, churned components go cold on each touch. p99_ns is the
// engine's computed-search p99 over the run, the latency cost of the
// misses the churn does force.
func benchmarkQueryUnderChurnProfile(b *testing.B, churned, coldPct int, pace time.Duration) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 2})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < benchComponents; c++ {
		nodes[0] = graph.Node(c * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			comp := (i / 2) % churned
			base := graph.Node(comp * benchCompSize)
			u := base + graph.Node(((i/2)*7)%(benchCompSize-1))
			var batch Batch
			if i%2 == 0 {
				batch.RemoveEdge(u, u+1)
			} else {
				batch.AddEdge(u, u+1)
			}
			e.Apply(batch)
			if pace > 0 {
				time.Sleep(pace)
			}
		}
	}()
	before := e.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var comp int
		if i%100 < coldPct {
			comp = i % churned
		} else {
			comp = churned + i%(benchComponents-churned)
		}
		nodes[0] = graph.Node(comp * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	st := e.Stats()
	if served := st.Queries - before.Queries; served > 0 {
		b.ReportMetric(float64(st.CacheHits-before.CacheHits)/float64(served), "hit_ratio")
	}
	b.ReportMetric(float64(st.P99.Nanoseconds()), "p99_ns")
	// Churn evidence: components actually superseded while the timer ran.
	// A hit_ratio of ~1.0 only means something if this is non-zero — it
	// rules out a starved writer making the ratio gate vacuous.
	b.ReportMetric(float64(st.Invalidated-before.Invalidated), "invalidated")
}

// BenchmarkEngineQueryUnderChurnWarmMajority is the gated steady-state
// profile: continuous Apply churn confined to 4 of 400 components, 95%
// of queries on untouched components. CI fails if hit_ratio drops below
// the pinned floor (see ci.yml) — the acceptance criterion for
// component-scoped epochs keeping the cache warm under churn.
func BenchmarkEngineQueryUnderChurnWarmMajority(b *testing.B) {
	benchmarkQueryUnderChurnProfile(b, 4, 5, 0)
}

// BenchmarkEngineQueryUnderChurnColdMajority skews 80% of queries into
// the churned components: the recorded hit_ratio/p99 pair shows what
// versioning costs when locality is bad (recorded, not gated).
func BenchmarkEngineQueryUnderChurnColdMajority(b *testing.B) {
	benchmarkQueryUnderChurnProfile(b, 4, 80, 0)
}

// BenchmarkEngineQueryUnderChurnWarmThrottled is the warm-majority skew
// at a low update rate (200µs between batches) — the sweep point that
// separates churn-rate effects from locality effects.
func BenchmarkEngineQueryUnderChurnWarmThrottled(b *testing.B) {
	benchmarkQueryUnderChurnProfile(b, 4, 5, 200*time.Microsecond)
}

// BenchmarkEngineQueryUnderChurnScattered spreads continuous churn over
// 64 components with a 50/50 query split — wide update locality, the
// worst realistic case for per-component retention.
func BenchmarkEngineQueryUnderChurnScattered(b *testing.B) {
	benchmarkQueryUnderChurnProfile(b, 64, 50, 0)
}

// BenchmarkEngineSmallQueriesCacheHit is the steady-state serving path: a
// warm LRU answers every query. The allocs/op of this benchmark is the
// engine's zero-alloc contract — CI gates it at 0.
func BenchmarkEngineSmallQueriesCacheHit(b *testing.B) {
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < benchComponents; c++ {
		nodes[0] = graph.Node(c * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0] = graph.Node((i % benchComponents) * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkCacheHitInject is BenchmarkEngineSmallQueriesCacheHit with
// the fault-injection registry in a controlled state: the cache-hit
// path passes the faultinject.EngineSearch point on every query, and
// the registry's zero-cost-when-disabled contract says neither the
// disarmed state nor an armed-elsewhere state may add an allocation (CI
// gates both at 0 allocs/op and their ns/op ratio; see ci.yml).
func benchmarkCacheHitInject(b *testing.B, arm bool) {
	faultinject.Reset()
	if arm {
		// Arm a DIFFERENT point: the hit path now pays the armed-registry
		// slow branch (one extra pointer load) but injects nothing.
		faultinject.Set(faultinject.ServerRespond, faultinject.Injection{Drop: true})
		b.Cleanup(faultinject.Reset)
	}
	e := New(smallQueryEngineGraph(benchComponents, benchCompSize), Options{Workers: 1})
	ctx := context.Background()
	nodes := make([]graph.Node, 1)
	for c := 0; c < benchComponents; c++ {
		nodes[0] = graph.Node(c * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0] = graph.Node((i % benchComponents) * benchCompSize)
		if _, err := e.Search(ctx, Query{Nodes: nodes}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCacheHitInjectOff is the production state: registry
// fully disarmed.
func BenchmarkEngineCacheHitInjectOff(b *testing.B) { benchmarkCacheHitInject(b, false) }

// BenchmarkEngineCacheHitInjectArmed is the chaos-elsewhere state: an
// injection armed on an unrelated point while this path serves hits.
func BenchmarkEngineCacheHitInjectArmed(b *testing.B) { benchmarkCacheHitInject(b, true) }
