package engine

// Robustness plumbing for the serving tier: queue-timeout vs
// peel-timeout semantics, per-query panic isolation, and the stale-read
// API degraded-mode serving is built on. cmd/dmcsd composes these —
// admission control and overload state live above the engine (see
// internal/server); what lives HERE is everything that must hold even
// for direct library callers:
//
//   - A query whose deadline expires while QUEUED (waiting for a worker
//     slot, no peel started) fails with ErrQueueTimeout — distinct from
//     a peel-timeout, which returns a best-so-far partial with
//     Result.TimedOut set. Queue-timeouts produce no result and are
//     never cached, extending the "partials are never cached" invariant
//     to work that never started.
//   - A panic inside one query's peel (a poisoned query, or an injected
//     chaos panic) is confined to that query: the caller gets a
//     *PanicError, the worker slot is released, the possibly-corrupt
//     arena is discarded, and the engine keeps serving.
//   - LookupStale answers a query from its component's current version
//     (not stale — untouched components keep their version across
//     Apply) or, within StaleRetention, from a superseded version of the
//     component's ancestry, when the caller (the overload controller, in
//     practice) decides a stale answer beats no answer.

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/faultinject"
	"dmcs/internal/graph"
)

// ErrQueueTimeout is returned by Search/SearchBatch when a query's
// Options.Timeout budget expired before a worker slot freed up: the
// search never started, so there is no partial result — unlike a
// peel-timeout, which returns the best community found so far with
// Result.TimedOut set. Queue-timeouts count toward both Stats.TimedOut
// and Stats.Errors, and nothing about the query is ever cached.
var ErrQueueTimeout = errors.New("engine: query timed out while queued (search never started)")

// errSlotCancelled is acquireSlot's "the cancel channel fired first"
// outcome; callers map it onto their own cancellation error.
var errSlotCancelled = errors.New("engine: slot wait cancelled")

// PanicError is what a query whose peel panicked returns: the panic is
// recovered at the engine boundary so one poisoned query costs one
// failed response, never the process. The possibly-corrupt search arena
// is discarded at the same point, so a recovered panic can never leak
// mid-peel scratch state into a later query.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: query panicked: %v", e.Value)
}

// acquireSlot takes a worker-pool slot under the query's remaining
// deadline budget. The uncontended path is a plain non-blocking channel
// send — no timer, no time.Now. When the pool is saturated it waits,
// racing the budget (timeout > 0) and the caller's cancel channel; on a
// successful contended acquire it returns the budget minus the queue
// wait, so queue wait and peel together never exceed the original
// timeout. A budget that runs out while queued — or that the wait fully
// consumed — yields ErrQueueTimeout with the slot released.
func (e *Engine) acquireSlot(timeout time.Duration, cancel <-chan struct{}) (time.Duration, error) {
	select {
	case e.sem <- struct{}{}:
		return timeout, nil
	default:
	}
	var queueC <-chan time.Time
	enq := time.Now()
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		queueC = t.C
	}
	select {
	case e.sem <- struct{}{}:
		if timeout > 0 {
			timeout -= time.Since(enq)
			if timeout <= 0 {
				<-e.sem
				return 0, ErrQueueTimeout
			}
		}
		return timeout, nil
	case <-cancel:
		return 0, errSlotCancelled
	case <-queueC:
		return 0, ErrQueueTimeout
	}
}

// safeSearch runs one peel with per-query panic isolation. It is the
// single funnel every engine-executed search goes through (solo,
// flight, and fused paths alike), so the isolation and the
// fault-injection point cannot be bypassed. On a recovered panic the
// bundle's arena — whose epoch tags and scratch slots may be mid-peel —
// is replaced with a fresh one before the bundle can return to the
// pool, and the caller gets a *PanicError.
//
// The faultinject.EnginePeel point fires here: injected latency models
// a slow peel, an injected error a failing one, an injected panic a
// poisoned query exercising the recovery path end to end.
func (e *Engine) safeSearch(ws *workerScratch, sub *graph.SubCSR, q, comp []graph.Node, v dmcs.Variant, opts dmcs.Options) (res *dmcs.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			ws.arena = dmcs.NewArena()
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Fire(faultinject.EnginePeel); err != nil {
		return nil, err
	}
	return dmcs.SearchSub(ws.arena, sub, q, comp, v, opts)
}

// NoteRejected records one admission rejection made by the serving tier
// above the engine (a malformed or over-budget request refused before
// any search work). The count lands on a rotating stats stripe — the
// same pattern the pre-admission error path uses — so a rejection storm
// spreads over the striped counters instead of hammering one cache
// line.
func (e *Engine) NoteRejected() {
	e.stats.recordRejected(int(e.stripeCtr.Add(1) & uint32(e.stats.numStripes()-1)))
}

// NoteShed records one load-shed query (bounded-queue overflow,
// token-bucket exhaustion, or overload-state shedding in the tier
// above). Same striping as NoteRejected.
func (e *Engine) NoteShed() {
	e.stats.recordShed(int(e.stripeCtr.Add(1) & uint32(e.stats.numStripes()-1)))
}

// LookupStale probes the result cache for q's answer at the query
// component's current version first, then — within maxBehind entries of
// the component's recorded ancestry, newest first — at superseded
// versions. It does no search work: a hit returns the cached result, the
// component version it was computed against, and whether that version is
// superseded (stale); a miss returns ok == false and the caller decides
// what failing gracefully means.
//
// Staleness is per component. A hit at the component's current version
// is NOT stale — even if the graph's global epoch has advanced many
// times since the result was computed, an Apply that never touched the
// component leaves its answer exact — and counts as a plain cache hit. A
// hit on a superseded ancestor version counts as Stats.StaleServed and
// returns stale == true; the caller MUST surface such results as stale
// (dmcsd sets "stale": true), because the community may not match the
// current graph.
//
// Ancestry is only recorded when the engine was built with
// Options.StaleRetention > 0; otherwise LookupStale degenerates to a
// current-version probe. A query whose nodes are invalid on the current
// snapshot (out of range, or spanning components) has no current
// component and returns ok == false.
func (e *Engine) LookupStale(q Query, maxBehind int) (res *dmcs.Result, version uint64, stale, ok bool) {
	if e.cache == nil {
		return nil, 0, false, false
	}
	snap := e.snap.Load()
	ws := e.getScratch()
	defer e.putScratch(ws)
	ws.nodes = normalizeNodesInto(ws.nodes[:0], q.Nodes)
	opts := canonicalOptions(q.Opts)
	id, err := snap.componentIndex(ws.nodes)
	if err != nil {
		return nil, 0, false, false
	}
	ws.key = appendCacheKey(ws.key[:0], snap.compKey[id], snap.compVer[id], ws.nodes, q.Variant, opts)
	if res, hit := e.cache.get(hashKey(ws.key), ws.key); hit {
		e.stats.recordHit(ws.stripe)
		return res, snap.compVer[id], false, true
	}
	hist := snap.compHist[id]
	if maxBehind >= 0 && len(hist) > maxBehind {
		hist = hist[:maxBehind]
	}
	for _, ref := range hist {
		ws.key = appendCacheKey(ws.key[:0], ref.key, ref.ver, ws.nodes, q.Variant, opts)
		if res, hit := e.cache.get(hashKey(ws.key), ws.key); hit {
			e.stats.recordStaleServed(ws.stripe)
			return res, ref.ver, true, true
		}
	}
	return nil, 0, false, false
}
