package engine

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
)

// serialOn computes the reference answer for q against one captured
// snapshot version, through the plain serial entry point.
func serialOn(t testing.TB, s *Snapshot, q Query) *dmcs.Result {
	t.Helper()
	res, err := dmcs.SearchCSR(s.CSR(), normalizeNodes(q.Nodes), q.Variant, q.Opts)
	if err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	return res
}

func sameResult(a, b *dmcs.Result) bool {
	return reflect.DeepEqual(a.Community, b.Community) && a.Score == b.Score && a.Iterations == b.Iterations
}

// TestApplyPublishesNewVersion: Apply bumps the epoch, the new snapshot
// reflects the batch, and queries return exactly the serial answer for
// the new graph version.
func TestApplyPublishesNewVersion(t *testing.T) {
	// Two triangles joined by nothing; the batch bridges them and adds a
	// pendant node.
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	e := New(g, Options{Workers: 2})
	ctx := context.Background()
	if e.Epoch() != 0 {
		t.Fatalf("initial epoch = %d, want 0", e.Epoch())
	}
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 3}}); !errors.Is(err, dmcs.ErrDisconnected) {
		t.Fatalf("pre-batch cross-component query: err = %v, want ErrDisconnected", err)
	}

	var b Batch
	b.AddEdge(2, 3)
	b.AddNode(6)
	st, _ := e.Apply(b)
	if st.Epoch != 1 || e.Epoch() != 1 {
		t.Fatalf("epoch after Apply = %d/%d, want 1", st.Epoch, e.Epoch())
	}
	if st.EdgesAdded != 1 || st.NodesAdded != 1 || st.Components != 2 {
		t.Fatalf("stats = %+v, want 1 edge, 1 node, 2 components", st)
	}
	if st.RefloodedNodes != 0 {
		t.Fatalf("insert-only batch reflooded %d nodes, want 0", st.RefloodedNodes)
	}
	got, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 3}})
	if err != nil {
		t.Fatalf("post-batch query: %v", err)
	}
	want := serialOn(t, e.Snapshot(), Query{Nodes: []graph.Node{0, 3}})
	if !sameResult(got, want) {
		t.Fatalf("post-batch result (%v, %v) != serial (%v, %v)", got.Community, got.Score, want.Community, want.Score)
	}
	// The pendant node exists and is queryable as its own community.
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{6}}); err != nil {
		t.Fatalf("new-node query: %v", err)
	}

	// Removing the bridge splits again and refloods only the merged
	// component (7 nodes), not the isolated one.
	var rm Batch
	rm.RemoveEdge(2, 3)
	st, _ = e.Apply(rm)
	if st.Epoch != 2 || st.EdgesRemoved != 1 {
		t.Fatalf("stats = %+v, want epoch 2 with 1 removal", st)
	}
	if st.RefloodedNodes != 6 {
		t.Fatalf("reflooded %d nodes, want 6 (the split component only)", st.RefloodedNodes)
	}
	if st.Components != 3 {
		t.Fatalf("components = %d, want 3", st.Components)
	}
	if _, err := e.Search(ctx, Query{Nodes: []graph.Node{0, 3}}); !errors.Is(err, dmcs.ErrDisconnected) {
		t.Fatalf("post-split query: err = %v, want ErrDisconnected", err)
	}
}

// TestApplyNoOpBatchKeepsVersion: a batch whose ops normalize to nothing
// (and an empty batch) must not bump the epoch or cold-start the caches.
func TestApplyNoOpBatchKeepsVersion(t *testing.T) {
	e := New(smallQueryEngineGraph(2, 40), Options{})
	ctx := context.Background()
	q := Query{Nodes: []graph.Node{0}}
	warm, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := e.Apply(Batch{}); st.Epoch != 0 {
		t.Fatalf("empty batch bumped epoch to %d", st.Epoch)
	}
	var b Batch
	b.RemoveEdge(0, 2) // absent (the fixture has no (i, i+2) chord)
	b.AddEdge(0, 1)    // present with weight 1 already
	b.AddNode(5)       // node exists
	if st, _ := e.Apply(b); st.Epoch != 0 {
		t.Fatalf("fully-no-op batch bumped epoch to %d", st.Epoch)
	}
	again, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if again != warm {
		t.Fatal("no-op Apply cold-started the result cache")
	}
}

// TestApplyRefloodsOnlyAffectedComponent is the acceptance-criterion
// counter assertion on a many-component graph: a batch whose removals
// touch one component re-floods that component alone.
func TestApplyRefloodsOnlyAffectedComponent(t *testing.T) {
	const comps, size = 10, 40
	e := New(smallQueryEngineGraph(comps, size), Options{})
	// Remove two chords inside component 3 (it stays connected via the
	// ring) — every other component must be left alone.
	var b Batch
	base := graph.Node(3 * size)
	b.RemoveEdge(base, base+7)
	b.RemoveEdge(base+1, base+14)
	st, _ := e.Apply(b)
	if st.EdgesRemoved != 2 {
		t.Fatalf("EdgesRemoved = %d, want 2", st.EdgesRemoved)
	}
	if st.RefloodedNodes != size {
		t.Fatalf("reflooded %d nodes, want exactly the %d-node affected component", st.RefloodedNodes, size)
	}
	if st.Components != comps {
		t.Fatalf("components = %d, want %d", st.Components, comps)
	}
	// Weight-only batches never reflood.
	var w Batch
	w.SetWeight(base, base+1, 2.5)
	if st, _ := e.Apply(w); st.RefloodedNodes != 0 || st.WeightsChanged != 1 {
		t.Fatalf("weight-only batch: %+v, want 0 refloods, 1 weight change", st)
	}
}

// TestEpochInvalidatesCache is the acceptance-criterion invalidation
// test: after any Apply, no query may observe a pre-update cached result
// — even though the pre-update query was a warm cache hit moments before.
func TestEpochInvalidatesCache(t *testing.T) {
	e := New(smallQueryEngineGraph(4, 40), Options{Workers: 2})
	ctx := context.Background()
	q := Query{Nodes: []graph.Node{3}}

	first, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("precondition: repeat query should be a cache hit (shared pointer)")
	}
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("precondition: CacheHits = %d, want 1", hits)
	}

	// Mutate the queried community: drop a chord touching node 3's ring.
	var b Batch
	b.RemoveEdge(3, 10)
	e.Apply(b)

	after, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after == first {
		t.Fatal("post-Apply query returned the pre-update cached *Result")
	}
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("post-Apply query hit the stale cache (CacheHits = %d, want still 1)", hits)
	}
	want := serialOn(t, e.Snapshot(), q)
	if !sameResult(after, want) {
		t.Fatalf("post-Apply result (%v, %v) != serial on new version (%v, %v)",
			after.Community, after.Score, want.Community, want.Score)
	}
	// And the new version caches normally again.
	again2, err := e.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if again2 != after {
		t.Fatal("new-version repeat should be a cache hit")
	}
}

// TestCacheKeyCarriesEpoch pins the structural half of the invalidation
// guarantee: the same normalized query never shares a cache key across
// two versions of its component, nor across two distinct component
// identities, so even a result inserted late (by a query that admitted
// before the swap and finished after it) cannot answer a lookup at the
// component's next version — while an identical (identity, version)
// stamp, i.e. an untouched component, produces the identical key across
// an Apply, which is what keeps its cache warm.
func TestCacheKeyCarriesEpoch(t *testing.T) {
	nodes := []graph.Node{1, 2, 3}
	k00 := appendCacheKey(nil, 0, 0, nodes, dmcs.VariantFPA, dmcs.Options{})
	k01 := appendCacheKey(nil, 0, 1, nodes, dmcs.VariantFPA, dmcs.Options{})
	k10 := appendCacheKey(nil, 1, 0, nodes, dmcs.VariantFPA, dmcs.Options{})
	if bytes.Equal(k00, k01) {
		t.Fatalf("cache keys for different component versions collide: %q", k00)
	}
	if bytes.Equal(k00, k10) {
		t.Fatalf("cache keys for different component identities collide: %q", k00)
	}
	// The delimiter between identity and version must prevent positional
	// ambiguity: (key=1, ver=10) vs (key=11, ver=0).
	if bytes.Equal(
		appendCacheKey(nil, 1, 10, nodes, dmcs.VariantFPA, dmcs.Options{}),
		appendCacheKey(nil, 11, 0, nodes, dmcs.VariantFPA, dmcs.Options{}),
	) {
		t.Fatal("identity/version concatenation is ambiguous")
	}
	if !bytes.Equal(k00, appendCacheKey(nil, 0, 0, nodes, dmcs.VariantFPA, dmcs.Options{})) {
		t.Fatal("identical stamps must produce identical keys")
	}
}

// TestQueryDuringApplyDifferential is the acceptance-criterion race test:
// queries racing an Apply must return a result bit-identical to running
// serially against either the pre-batch or the post-batch snapshot —
// never a hybrid of the two versions. Run under -race in CI, this also
// proves the swap itself is data-race-free.
func TestQueryDuringApplyDifferential(t *testing.T) {
	const comps, size = 6, 60
	g := smallQueryEngineGraph(comps, size)
	e := New(g, Options{Workers: 8})
	ctx := context.Background()
	// Queries spread across components, including the mutated one.
	queries := []Query{
		{Nodes: []graph.Node{0}},
		{Nodes: []graph.Node{3, 17}},
		{Nodes: []graph.Node{size + 5}},
		{Nodes: []graph.Node{2 * size}, Variant: dmcs.VariantFPADMG},
		{Nodes: []graph.Node{3 * size}, Opts: dmcs.Options{LayerPruning: true}},
	}
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	for round := 0; round < rounds; round++ {
		pre := e.Snapshot()
		// Alternate between removing and restoring two chords of component
		// 0 plus a weight perturbation in component 1, so both the
		// community shapes and the scores differ across versions.
		var b Batch
		if round%2 == 0 {
			b.RemoveEdge(0, 7)
			b.RemoveEdge(3, 16)
			b.SetWeight(graph.Node(size), graph.Node(size+1), 3)
		} else {
			b.AddEdge(0, 7)
			b.AddEdge(3, 16)
			b.SetWeight(graph.Node(size), graph.Node(size+1), 1)
		}

		got := make([]*dmcs.Result, len(queries))
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q Query) {
				defer wg.Done()
				res, err := e.Search(ctx, q)
				if err != nil {
					t.Errorf("round %d query %d: %v", round, i, err)
					return
				}
				got[i] = res
			}(i, q)
		}
		e.Apply(b)
		post := e.Snapshot()
		wg.Wait()
		if t.Failed() {
			return
		}
		for i, q := range queries {
			wantPre := serialOn(t, pre, q)
			wantPost := serialOn(t, post, q)
			if !sameResult(got[i], wantPre) && !sameResult(got[i], wantPost) {
				t.Fatalf("round %d query %d: result (%v, %v) matches neither pre (%v, %v) nor post (%v, %v) version",
					round, i, got[i].Community, got[i].Score,
					wantPre.Community, wantPre.Score, wantPost.Community, wantPost.Score)
			}
		}
		// Settled queries (no racing writer) must match the live version
		// exactly. For the untouched components this also covers the
		// frozen-w_G contract: the toggle preserves the graph's total
		// weight exactly (two unit chords out, +2 on one weight), so their
		// stamped-version answers coincide bitwise with the live serial
		// reference — any keying or normalization drift would surface here.
		for i, q := range queries {
			res, err := e.Search(ctx, q)
			if err != nil {
				t.Fatalf("round %d settled query %d: %v", round, i, err)
			}
			if want := serialOn(t, post, q); !sameResult(res, want) {
				t.Fatalf("round %d settled query %d: (%v, %v) != serial (%v, %v)",
					round, i, res.Community, res.Score, want.Community, want.Score)
			}
		}
	}
}

// TestConcurrentApplyAndBatchSearch hammers Apply from several writers
// while batch queries stream — the -race stress for the swap path, the
// component-version-keyed cache, and the immutable-replace entry
// discipline. Writers stay inside components 0..2; component 3 is never
// touched, so when the dust settles it must still be at version 0 with
// its original answer warm.
func TestConcurrentApplyAndBatchSearch(t *testing.T) {
	const comps, size = 4, 40
	e := New(smallQueryEngineGraph(comps, size), Options{Workers: 4, CacheSize: 8})
	ctx := context.Background()
	orig := e.Snapshot()
	var qs []Query
	for c := 0; c < comps; c++ {
		qs = append(qs, Query{Nodes: []graph.Node{graph.Node(c * size)}})
	}
	rounds := 30
	if testing.Short() {
		rounds = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each writer toggles ring edges inside its own component,
				// restoring on odd rounds what the even round removed.
				var b Batch
				u := graph.Node(w*size + ((r/2)*7)%(size-1))
				if r%2 == 0 {
					b.RemoveEdge(u, u+1)
				} else {
					b.AddEdge(u, u+1)
				}
				e.Apply(b)
			}
		}(w)
	}
	for r := 0; r < rounds; r++ {
		for _, br := range e.SearchBatch(ctx, qs) {
			if br.Err != nil {
				t.Fatal(br.Err)
			}
		}
	}
	wg.Wait()
	// Component 3 was never touched: its version must have survived every
	// Apply, and its answer must still be the one computed against the
	// ORIGINAL snapshot — member set, adjacency, and frozen w_G all date
	// from version 0.
	settled := e.Snapshot()
	idx3, err := settled.ComponentID(qs[3].Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if v := settled.ComponentVersion(idx3); v != 0 {
		t.Fatalf("untouched component 3 at version %d, want 0", v)
	}
	res3, err := e.Search(ctx, qs[3])
	if err != nil {
		t.Fatal(err)
	}
	if want := serialOn(t, orig, qs[3]); !sameResult(res3, want) {
		t.Fatalf("untouched component 3 after churn: (%v, %v) != original serial (%v, %v)",
			res3.Community, res3.Score, want.Community, want.Score)
	}
	// One batch touching every component restamps them all at the live
	// graph, so every query must now match the final version's serial
	// reference — frozen w_G and live w_G coincide again.
	var settle Batch
	for c := 0; c < comps; c++ {
		settle.SetWeight(graph.Node(c*size), graph.Node(c*size+1), 2)
	}
	e.Apply(settle)
	final := e.Snapshot()
	for i, q := range qs {
		res, err := e.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if want := serialOn(t, final, q); !sameResult(res, want) {
			t.Fatalf("query %d after churn: (%v, %v) != serial (%v, %v)",
				i, res.Community, res.Score, want.Community, want.Score)
		}
	}
}

// TestResultCacheConcurrentReplace is the -race stress for the
// immutable-replace fix: writers re-adding the same key while readers
// get it must never let a reader observe a torn or rewritten entry.
func TestResultCacheConcurrentReplace(t *testing.T) {
	c := newResultCache(4, 4)
	key := []byte("k")
	h := hashKey(key)
	results := make([]*dmcs.Result, 8)
	for i := range results {
		results[i] = &dmcs.Result{Score: float64(i)}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.add(h, key, results[(w+i)%len(results)])
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if res, ok := c.get(h, key); ok {
					// The entry must always be one of the published
					// results, whole.
					if res.Score < 0 || res.Score >= float64(len(results)) {
						t.Errorf("torn cache entry: %+v", res)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestStatsPercentileSmallWindowCeilRank is the regression test for the
// floor nearest-rank bug: with fewer than 20 samples the old formula
// could never select the window maximum for P95.
func TestStatsPercentileSmallWindowCeilRank(t *testing.T) {
	s := newStatsCollector(1)
	for i := 1; i <= 10; i++ {
		s.recordSearch(0, time.Duration(i)*time.Millisecond, true)
	}
	st := s.snapshot(0)
	if st.P50 != 5*time.Millisecond {
		t.Errorf("P50 = %v, want 5ms (ceil nearest rank of 10 samples)", st.P50)
	}
	if st.P95 != 10*time.Millisecond {
		t.Errorf("P95 = %v, want 10ms (the window max for n=10)", st.P95)
	}

	s2 := newStatsCollector(1)
	s2.recordSearch(0, 2*time.Millisecond, true)
	s2.recordSearch(0, 8*time.Millisecond, true)
	st = s2.snapshot(0)
	if st.P50 != 2*time.Millisecond || st.P95 != 8*time.Millisecond {
		t.Errorf("n=2: P50/P95 = %v/%v, want 2ms/8ms", st.P50, st.P95)
	}

	// Table-check the rank function itself.
	for _, tc := range []struct{ n, p, want int }{
		{1, 50, 0}, {1, 95, 0},
		{2, 50, 0}, {2, 95, 1},
		{10, 50, 4}, {10, 95, 9},
		{20, 95, 18}, {100, 95, 94}, {4096, 50, 2047},
	} {
		if got := ceilRank(tc.n, tc.p); got != tc.want {
			t.Errorf("ceilRank(%d, %d) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
}
