// Package kecc implements k-edge-connected components and the kecc
// community-search baseline (Chang et al. 2015). Two engines are provided:
//
//   - MinCut: the exact Stoer–Wagner global minimum cut, used on small
//     (sub)graphs and as the correctness reference;
//   - Decompose: a recursive cut-and-split decomposition that peels
//     degree-<k nodes, then looks for cuts of size < k with forced-and-
//     random edge contraction (in the spirit of Akiba, Iwata & Yoshida
//     2013), falling back to Stoer–Wagner on small components so results
//     stay exact where it is affordable.
package kecc

import (
	"math/rand"
	"slices"
	"sort"

	"dmcs/internal/graph"
)

// swThreshold is the component size at and below which the decomposition
// verifies connectivity with the exact Stoer–Wagner cut. Above it the
// randomized contraction search takes over (O(n³) Stoer–Wagner would
// dominate whole-experiment runtimes otherwise).
const swThreshold = 128

// contractTrials is the number of random-contraction attempts before a
// large component is declared k-edge-connected.
const contractTrials = 24

// MinCut computes the global minimum edge cut of the *connected* graph g
// with the Stoer–Wagner algorithm, returning the cut weight and the nodes
// on one side. For unweighted graphs the weight is the number of cut
// edges. Graphs with fewer than 2 nodes return (0, nil).
func MinCut(g *graph.Graph) (float64, []graph.Node) {
	n := g.NumNodes()
	if n < 2 {
		return 0, nil
	}
	// dense weight matrix; callers only use MinCut on small graphs
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	g.EdgesW(func(u, v graph.Node, we float64) bool {
		w[u][v] += we
		w[v][u] += we
		return true
	})
	// merged[i] lists original nodes represented by i
	merged := make([][]graph.Node, n)
	for i := range merged {
		merged[i] = []graph.Node{graph.Node(i)}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	bestW := -1.0
	var bestSide []graph.Node
	for len(active) > 1 {
		// maximum adjacency (minimum cut phase)
		inA := make(map[int]bool, len(active))
		weights := make(map[int]float64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// pick most tightly connected remaining node
			sel, selW := -1, -1.0
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		t := order[len(order)-1]
		var s int
		if len(order) >= 2 {
			s = order[len(order)-2]
		}
		cutW := 0.0
		for _, v := range active {
			if v != t {
				cutW += w[t][v]
			}
		}
		if bestW < 0 || cutW < bestW {
			bestW = cutW
			bestSide = append([]graph.Node(nil), merged[t]...)
		}
		// merge t into s
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		merged[s] = append(merged[s], merged[t]...)
		for i, v := range active {
			if v == t {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	slices.Sort(bestSide)
	return bestW, bestSide
}

// EdgeConnectivity returns the edge connectivity of a connected graph
// (0 for graphs with < 2 nodes).
func EdgeConnectivity(g *graph.Graph) int {
	w, _ := MinCut(g)
	return int(w + 0.5)
}

// Decompose partitions g into its maximal k-edge-connected subgraphs
// (node sets of size ≥ 2). Nodes belonging to no such subgraph are
// omitted. Deterministic for a fixed seed.
func Decompose(g *graph.Graph, k int, seed int64) [][]graph.Node {
	rng := rand.New(rand.NewSource(seed))
	var out [][]graph.Node
	work := [][]graph.Node{allNodes(g)}
	for len(work) > 0 {
		set := work[len(work)-1]
		work = work[:len(work)-1]
		// peel nodes with degree < k, split into components
		comps := peelAndSplit(g, set, k)
		for _, comp := range comps {
			if len(comp) < 2 {
				continue
			}
			side := findCutBelow(g, comp, k, rng)
			if side == nil {
				slices.Sort(comp)
				out = append(out, comp)
				continue
			}
			other := subtract(comp, side)
			work = append(work, side, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Community returns the kecc baseline: the maximal k-edge-connected
// subgraph containing all the query nodes, or nil.
func Community(g *graph.Graph, q []graph.Node, k int, seed int64) []graph.Node {
	if len(q) == 0 {
		return nil
	}
	for _, comp := range Decompose(g, k, seed) {
		in := make(map[graph.Node]bool, len(comp))
		for _, u := range comp {
			in[u] = true
		}
		all := true
		for _, u := range q {
			if !in[u] {
				all = false
				break
			}
		}
		if all {
			return comp
		}
	}
	return nil
}

func allNodes(g *graph.Graph) []graph.Node {
	out := make([]graph.Node, g.NumNodes())
	for i := range out {
		out[i] = graph.Node(i)
	}
	return out
}

func subtract(set, minus []graph.Node) []graph.Node {
	drop := make(map[graph.Node]bool, len(minus))
	for _, u := range minus {
		drop[u] = true
	}
	var out []graph.Node
	for _, u := range set {
		if !drop[u] {
			out = append(out, u)
		}
	}
	return out
}

// peelAndSplit removes nodes with degree < k (iteratively) within the
// induced subgraph over set, then returns its connected components.
func peelAndSplit(g *graph.Graph, set []graph.Node, k int) [][]graph.Node {
	v := graph.NewViewOf(g, set)
	queue := make([]graph.Node, 0)
	for _, u := range set {
		if v.DegreeIn(u) < k {
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !v.Alive(u) {
			continue
		}
		v.Remove(u)
		for _, w := range g.Neighbors(u) {
			if v.Alive(w) && v.DegreeIn(w) < k {
				queue = append(queue, w)
			}
		}
	}
	var comps [][]graph.Node
	seen := make(map[graph.Node]bool)
	for _, u := range set {
		if v.Alive(u) && !seen[u] {
			comp := graph.ComponentOf(v, u)
			for _, x := range comp {
				seen[x] = true
			}
			comps = append(comps, comp)
		}
	}
	return comps
}

// findCutBelow searches for an edge cut of size < k inside the induced
// connected subgraph over comp. It returns one side of such a cut, or nil
// when none is found (the component is declared k-edge-connected). Small
// components are verified exactly with Stoer–Wagner.
func findCutBelow(g *graph.Graph, comp []graph.Node, k int, rng *rand.Rand) []graph.Node {
	if len(comp) <= swThreshold {
		sub, back := g.InducedSubgraph(comp)
		w, side := MinCut(sub)
		if int(w+0.5) >= k {
			return nil
		}
		out := make([]graph.Node, len(side))
		for i, u := range side {
			out[i] = back[u]
		}
		return out
	}
	for trial := 0; trial < contractTrials; trial++ {
		if side := contractOnce(g, comp, k, rng); side != nil {
			return side
		}
	}
	return nil
}

// contractOnce performs one randomized contraction pass: edges with
// multiplicity ≥ k are contracted eagerly (they can never be separated by
// a cut < k); otherwise random edges are contracted. Whenever a super-node
// of total degree < k appears while ≥ 2 super-nodes remain, its members
// form one side of a cut of size < k.
func contractOnce(g *graph.Graph, comp []graph.Node, k int, rng *rand.Rand) []graph.Node {
	idx := make(map[graph.Node]int32, len(comp))
	for i, u := range comp {
		idx[u] = int32(i)
	}
	n := len(comp)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// super-node adjacency with multiplicities
	adj := make([]map[int32]int32, n)
	for i, u := range comp {
		adj[i] = make(map[int32]int32)
		for _, w := range g.Neighbors(u) {
			if j, ok := idx[w]; ok {
				adj[i][j]++
			}
		}
	}
	deg := make([]int32, n)
	for i := range adj {
		for _, c := range adj[i] {
			deg[i] += c
		}
	}
	alive := n
	members := make([][]graph.Node, n)
	for i, u := range comp {
		members[i] = []graph.Node{u}
	}
	var contract func(a, b int32)
	contract = func(a, b int32) {
		// merge smaller map into larger
		if len(adj[a]) < len(adj[b]) {
			a, b = b, a
		}
		parent[b] = a
		members[a] = append(members[a], members[b]...)
		members[b] = nil
		delete(adj[a], b)
		for nb, c := range adj[b] {
			if nb == a {
				continue
			}
			adj[a][nb] += c
			adj[nb][a] += c
			delete(adj[nb], b)
		}
		adj[b] = nil
		deg[a] = 0
		for _, c := range adj[a] {
			deg[a] += c
		}
		alive--
	}
	// edge pool in random order
	type epair struct{ a, b int32 }
	var pool []epair
	for i, u := range comp {
		for _, w := range g.Neighbors(u) {
			if j, ok := idx[w]; ok && int32(i) < j {
				pool = append(pool, epair{int32(i), j})
			}
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	checkLow := func(x int32) []graph.Node {
		if alive >= 2 && deg[x] < int32(k) {
			return members[x]
		}
		return nil
	}
	forced := func(a int32) (int32, bool) {
		for nb, c := range adj[a] {
			if c >= int32(k) {
				return nb, true
			}
		}
		return 0, false
	}
	for _, e := range pool {
		if alive <= 1 {
			break
		}
		a, b := find(e.a), find(e.b)
		if a == b {
			continue
		}
		contract(a, b)
		root := find(a)
		if side := checkLow(root); side != nil {
			return side
		}
		// eager forced contractions around the merge point
		for {
			nb, ok := forced(root)
			if !ok || alive <= 1 {
				break
			}
			contract(root, nb)
			root = find(root)
			if side := checkLow(root); side != nil {
				return side
			}
		}
	}
	return nil
}
