package kecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	return b.Build()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node((i+1)%n))
	}
	return b.Build()
}

func TestMinCutCycle(t *testing.T) {
	w, side := MinCut(cycle(6))
	if int(w) != 2 {
		t.Fatalf("cycle min cut=%v want 2", w)
	}
	if len(side) == 0 || len(side) == 6 {
		t.Fatalf("side=%v must be a proper subset", side)
	}
}

func TestMinCutClique(t *testing.T) {
	w, side := MinCut(complete(5))
	if int(w) != 4 {
		t.Fatalf("K5 min cut=%v want 4", w)
	}
	if len(side) != 1 && len(side) != 4 {
		t.Fatalf("K5 min cut side=%v", side)
	}
}

func TestMinCutBridge(t *testing.T) {
	// two triangles + bridge: min cut 1
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	w, side := MinCut(g)
	if int(w) != 1 {
		t.Fatalf("bridge min cut=%v want 1", w)
	}
	if len(side) != 3 {
		t.Fatalf("side=%v want a triangle", side)
	}
}

func TestMinCutWeighted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetWeight(0, 1, 10)
	b.SetWeight(1, 2, 0.5)
	b.SetWeight(2, 3, 10)
	b.SetWeight(3, 0, 0.5)
	g := b.Build()
	w, _ := MinCut(g)
	if w != 1.0 {
		t.Fatalf("weighted min cut=%v want 1.0", w)
	}
}

func TestMinCutTiny(t *testing.T) {
	if w, s := MinCut(graph.FromEdges(1, nil)); w != 0 || s != nil {
		t.Fatal("single node should have no cut")
	}
	w, _ := MinCut(graph.FromEdges(2, [][2]graph.Node{{0, 1}}))
	if int(w) != 1 {
		t.Fatalf("K2 cut=%v want 1", w)
	}
}

// Brute-force min cut for tiny graphs by trying all bipartitions.
func bruteMinCut(g *graph.Graph) int {
	n := g.NumNodes()
	best := 1 << 30
	for mask := 1; mask < (1<<n)-1; mask++ {
		cut := 0
		g.Edges(func(u, v graph.Node) bool {
			if (mask>>u)&1 != (mask>>v)&1 {
				cut++
			}
			return true
		})
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestMinCutMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		b := graph.NewBuilder(n)
		// connected base: spanning path, then random extras
		for i := 1; i < n; i++ {
			b.AddEdge(graph.Node(i-1), graph.Node(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 2; j < n; j++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		w, _ := MinCut(g)
		return int(w+0.5) == bruteMinCut(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeConnectivity(t *testing.T) {
	if EdgeConnectivity(complete(6)) != 5 {
		t.Fatal("K6 edge connectivity should be 5")
	}
	if EdgeConnectivity(cycle(8)) != 2 {
		t.Fatal("cycle edge connectivity should be 2")
	}
}

func TestDecomposeTwoCliques(t *testing.T) {
	// two K5s joined by 2 edges: 3-edge-connected components are the K5s
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+5), graph.Node(j+5))
		}
	}
	b.AddEdge(0, 5)
	b.AddEdge(1, 6)
	g := b.Build()
	comps := Decompose(g, 3, 1)
	if len(comps) != 2 {
		t.Fatalf("got %d comps, want 2: %v", len(comps), comps)
	}
	for _, c := range comps {
		if len(c) != 5 {
			t.Fatalf("component %v should be a K5", c)
		}
	}
	// at k=2 the union is 2-edge-connected (two vertex-disjoint paths)
	comps2 := Decompose(g, 2, 1)
	if len(comps2) != 1 || len(comps2[0]) != 10 {
		t.Fatalf("k=2 decomposition=%v want the whole graph", comps2)
	}
}

func TestDecomposeDropsThinParts(t *testing.T) {
	// path graph has no 2-edge-connected subgraph
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	if comps := Decompose(b.Build(), 2, 1); len(comps) != 0 {
		t.Fatalf("path should have no 2-ECC, got %v", comps)
	}
}

func TestCommunity(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			b.AddEdge(graph.Node(i+5), graph.Node(j+5))
		}
	}
	b.AddEdge(0, 5)
	g := b.Build()
	c := Community(g, []graph.Node{2}, 3, 1)
	if len(c) != 5 || c[0] != 0 {
		t.Fatalf("community=%v want first K5", c)
	}
	// query nodes split across components → nil
	if c := Community(g, []graph.Node{2, 7}, 3, 1); c != nil {
		t.Fatalf("split query should fail, got %v", c)
	}
	if Community(g, nil, 3, 1) != nil {
		t.Fatal("empty query should return nil")
	}
}

// Property: every reported component really is k-edge-connected (verified
// with Stoer–Wagner) and components are disjoint.
func TestDecomposePropertyExact(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					b.AddEdge(graph.Node(i), graph.Node(j))
				}
			}
		}
		g := b.Build()
		k := 2 + rng.Intn(3)
		comps := Decompose(g, k, seed)
		seen := make(map[graph.Node]bool)
		for _, c := range comps {
			for _, u := range c {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
			sub, _ := g.InducedSubgraph(c)
			if EdgeConnectivity(sub) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: maximality — merging any two reported components (or adding
// leftover nodes) cannot produce a larger k-edge-connected subgraph that
// strictly contains a reported one. We verify the standard certificate:
// the decomposition is unchanged when recomputed on the union of all
// components.
func TestDecomposeStability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(graph.Node(i), graph.Node(j))
			}
		}
	}
	g := b.Build()
	first := Decompose(g, 3, 7)
	var union []graph.Node
	for _, c := range first {
		union = append(union, c...)
	}
	sub, back := g.InducedSubgraph(union)
	second := Decompose(sub, 3, 7)
	if len(second) != len(first) {
		t.Fatalf("re-decomposition changed component count: %d vs %d", len(second), len(first))
	}
	total1, total2 := 0, 0
	for _, c := range first {
		total1 += len(c)
	}
	for _, c := range second {
		total2 += len(c)
	}
	_ = back
	if total1 != total2 {
		t.Fatalf("re-decomposition changed coverage: %d vs %d", total1, total2)
	}
}
