package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmcs/internal/graph"
)

const eps = 1e-9

func nodes(ids ...int) []graph.Node {
	out := make([]graph.Node, len(ids))
	for i, v := range ids {
		out[i] = graph.Node(v)
	}
	return out
}

func TestConfusionCounts(t *testing.T) {
	c := Confuse(nodes(0, 1, 2), nodes(1, 2, 3), 6)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 2 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TP: 2, FP: 1, FN: 1, TN: 2}
	if math.Abs(c.Precision()-2.0/3) > eps {
		t.Fatalf("precision=%v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > eps {
		t.Fatalf("recall=%v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > eps {
		t.Fatalf("f1=%v", c.F1())
	}
}

func TestDegenerateConfusion(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.MCC() != 0 {
		t.Fatal("empty confusion should score 0 everywhere")
	}
}

func TestPerfectPrediction(t *testing.T) {
	f := nodes(0, 1, 2)
	if got := NMI(f, f, 10); math.Abs(got-1) > eps {
		t.Fatalf("NMI perfect=%v", got)
	}
	if got := ARI(f, f, 10); math.Abs(got-1) > eps {
		t.Fatalf("ARI perfect=%v", got)
	}
	if got := FScore(f, f, 10); math.Abs(got-1) > eps {
		t.Fatalf("F1 perfect=%v", got)
	}
	if got := Confuse(f, f, 10).MCC(); math.Abs(got-1) > eps {
		t.Fatalf("MCC perfect=%v", got)
	}
}

func TestComplementPrediction(t *testing.T) {
	// Predicting exactly the complement induces the *same* two-block
	// partition of the universe, so partition-based ARI/NMI are 1; the
	// classification-view MCC is -1. This is exactly why the paper warns
	// that set-vs-partition metrics must not be mixed up.
	found := nodes(0, 1, 2, 3, 4)
	truth := nodes(5, 6, 7, 8, 9)
	if got := ARI(found, truth, 10); math.Abs(got-1) > eps {
		t.Fatalf("partition ARI of complement should be 1, got %v", got)
	}
	if got := Confuse(found, truth, 10).MCC(); math.Abs(got+1) > eps {
		t.Fatalf("MCC of complement should be -1, got %v", got)
	}
}

func TestNMIKnownValue(t *testing.T) {
	// Two half/half partitions of 4 elements agreeing on 3 of 4:
	// computed by hand: H = ln 2; MI = 2*(1/2)ln... use independence check
	// instead: independent labelings → NMI ≈ 0.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	if got := PartitionNMI(a, b); math.Abs(got) > eps {
		t.Fatalf("independent partitions NMI=%v want 0", got)
	}
}

func TestNMIPermutationInvariant(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, different label names
	if got := PartitionNMI(a, b); math.Abs(got-1) > eps {
		t.Fatalf("relabeled identical partitions NMI=%v want 1", got)
	}
	if got := PartitionARI(a, b); math.Abs(got-1) > eps {
		t.Fatalf("relabeled identical partitions ARI=%v want 1", got)
	}
}

func TestTrivialPartitions(t *testing.T) {
	all := []int{0, 0, 0, 0}
	if got := PartitionNMI(all, all); got != 1 {
		t.Fatalf("constant vs constant NMI=%v want 1", got)
	}
	split := []int{0, 0, 1, 1}
	if got := PartitionNMI(all, split); got != 0 {
		t.Fatalf("constant vs split NMI=%v want 0", got)
	}
}

func TestNMISymmetricProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		if math.Abs(PartitionNMI(a, b)-PartitionNMI(b, a)) > eps {
			return false
		}
		if math.Abs(PartitionARI(a, b)-PartitionARI(b, a)) > eps {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNMIBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		v := PartitionNMI(a, b)
		return v >= -eps && v <= 1+eps
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestARIRandomLabelingNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(2)
		b[i] = rng.Intn(2)
	}
	if got := PartitionARI(a, b); math.Abs(got) > 0.05 {
		t.Fatalf("ARI of random labelings = %v, want ≈0", got)
	}
}

func TestBestAgainst(t *testing.T) {
	found := nodes(0, 1, 2)
	truths := [][]graph.Node{nodes(7, 8, 9), nodes(0, 1, 2, 3), nodes(0, 5)}
	got := BestAgainst(found, truths, 10, NMI)
	want := NMI(found, truths[1], 10)
	if math.Abs(got-want) > eps {
		t.Fatalf("BestAgainst=%v want %v", got, want)
	}
	if BestAgainst(found, nil, 10, NMI) != 0 {
		t.Fatal("BestAgainst with no truths should be 0")
	}
}

func TestMedianAndMean(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median=%v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median=%v", got)
	}
	if Median(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean=%v", got)
	}
	// Median must not mutate its input.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatal("Median mutated input")
	}
}

func TestBinaryLabels(t *testing.T) {
	lab := BinaryLabels(nodes(1, 3), 5)
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if lab[i] != want[i] {
			t.Fatalf("labels=%v", lab)
		}
	}
}

// Larger found communities that still contain the truth should score lower
// than the exact match (the property that penalizes free riders).
func TestNMIPenalizesOversizedCommunities(t *testing.T) {
	truth := nodes(0, 1, 2, 3)
	exact := NMI(truth, truth, 100)
	bloated := NMI(nodes(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11), truth, 100)
	if bloated >= exact {
		t.Fatalf("bloated NMI %v should be below exact %v", bloated, exact)
	}
}
