// Package metrics implements the community-quality measures used in the
// paper's evaluation: Normalized Mutual Information (NMI), the Adjusted
// Rand Index (ARI), F-score, and — following the paper's note on inflated
// F-scores (Chicco & Jurman 2020) — the Matthews correlation coefficient.
//
// Following Section 6.1, community search is evaluated as a binary
// classification over the node set: the ground-truth community containing
// the query is the positive class, the identified community is the
// prediction. Binary* helpers build the two-block partitions and the
// general partition forms are also exposed (used for detection baselines).
package metrics

import (
	"math"
	"slices"

	"dmcs/internal/graph"
)

// Confusion is a binary confusion matrix over n nodes.
type Confusion struct {
	TP, FP, FN, TN int
}

// Confuse computes the confusion matrix of predicted community `found`
// against ground truth `truth` over a universe of n nodes.
func Confuse(found, truth []graph.Node, n int) Confusion {
	inF := make(map[graph.Node]bool, len(found))
	for _, u := range found {
		inF[u] = true
	}
	inT := make(map[graph.Node]bool, len(truth))
	for _, u := range truth {
		inT[u] = true
	}
	var c Confusion
	for u := 0; u < n; u++ {
		f, t := inF[graph.Node(u)], inT[graph.Node(u)]
		switch {
		case f && t:
			c.TP++
		case f && !t:
			c.FP++
		case !f && t:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MCC returns the Matthews correlation coefficient, 0 when undefined.
func (c Confusion) MCC() float64 {
	tp, fp, fn, tn := float64(c.TP), float64(c.FP), float64(c.FN), float64(c.TN)
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return 0
	}
	return (tp*tn - fp*fn) / den
}

// FScore evaluates the F1 of a found community against the ground truth
// (the paper's Fscore metric).
func FScore(found, truth []graph.Node, n int) float64 {
	return Confuse(found, truth, n).F1()
}

// PartitionNMI computes the normalized mutual information between two
// labelings of the same universe, NMI = 2 I(A;B) / (H(A)+H(B)). Labels are
// arbitrary non-negative ints. When both labelings are constant it returns
// 1 (identical partitions) by convention; when exactly one is constant it
// returns 0.
func PartitionNMI(a, b []int) float64 {
	n := len(a)
	if n == 0 || len(b) != n {
		return 0
	}
	ca := countLabels(a)
	cb := countLabels(b)
	joint := make(map[[2]int]int)
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
	}
	fn := float64(n)
	// Entropy/MI sums run over sorted keys: map order would perturb the
	// low bits run to run.
	var ha, hb, mi float64
	for _, k := range sortedIntKeys(ca) {
		p := float64(ca[k]) / fn
		ha -= p * math.Log(p)
	}
	for _, k := range sortedIntKeys(cb) {
		p := float64(cb[k]) / fn
		hb -= p * math.Log(p)
	}
	for _, k := range sortedPairKeys(joint) {
		pxy := float64(joint[k]) / fn
		px := float64(ca[k[0]]) / fn
		py := float64(cb[k[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	if ha == 0 && hb == 0 {
		return 1
	}
	if ha == 0 || hb == 0 {
		return 0
	}
	return 2 * mi / (ha + hb)
}

// PartitionARI computes the adjusted Rand index between two labelings.
func PartitionARI(a, b []int) float64 {
	n := len(a)
	if n == 0 || len(b) != n {
		return 0
	}
	ca := countLabels(a)
	cb := countLabels(b)
	joint := make(map[[2]int]int)
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
	}
	// Sorted sweeps for run-to-run bit-stable sums (see PartitionNMI).
	var sumJoint, sumA, sumB float64
	for _, k := range sortedPairKeys(joint) {
		sumJoint += choose2(joint[k])
	}
	for _, k := range sortedIntKeys(ca) {
		sumA += choose2(ca[k])
	}
	for _, k := range sortedIntKeys(cb) {
		sumB += choose2(cb[k])
	}
	total := choose2(n)
	if total == 0 {
		return 0
	}
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial in the same way
	}
	return (sumJoint - expected) / (maxIdx - expected)
}

// BinaryLabels converts a node set into a two-block labeling over n nodes
// (1 = member, 0 = non-member).
func BinaryLabels(set []graph.Node, n int) []int {
	lab := make([]int, n)
	for _, u := range set {
		lab[u] = 1
	}
	return lab
}

// NMI evaluates the paper's community-search NMI: the binary-partition NMI
// of the identified community against the ground-truth community.
func NMI(found, truth []graph.Node, n int) float64 {
	return PartitionNMI(BinaryLabels(found, n), BinaryLabels(truth, n))
}

// ARI evaluates the binary-partition adjusted Rand index of the identified
// community against the ground truth.
func ARI(found, truth []graph.Node, n int) float64 {
	return PartitionARI(BinaryLabels(found, n), BinaryLabels(truth, n))
}

// BestAgainst scores the found community against every ground-truth
// community containing the query nodes and returns the best value, the
// paper's protocol for overlapping ground truth ("we compare our result
// with each of the ground-truth communities which contain the query node,
// and report the best accuracy"). score is typically NMI or ARI.
func BestAgainst(found []graph.Node, truths [][]graph.Node, n int, score func(found, truth []graph.Node, n int) float64) float64 {
	best := math.Inf(-1)
	for _, t := range truths {
		if s := score(found, t, n); s > best {
			best = s
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// Median returns the median of xs (0 for empty input), the aggregate the
// paper reports across query sets.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// insertion sort: query-set batches are tiny
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

func countLabels(a []int) map[int]int {
	m := make(map[int]int)
	for _, x := range a {
		m[x]++
	}
	return m
}

func choose2(c int) float64 { return float64(c) * float64(c-1) / 2 }

func sortedIntKeys(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

func sortedPairKeys(m map[[2]int]int) [][2]int {
	ks := make([][2]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.SortFunc(ks, func(a, b [2]int) int {
		switch {
		case a[0] != b[0] && a[0] < b[0]:
			return -1
		case a[0] != b[0]:
			return 1
		case a[1] < b[1]:
			return -1
		case a[1] > b[1]:
			return 1
		}
		return 0
	})
	return ks
}
