package centrality

import (
	"math"
	"sort"
	"testing"

	"dmcs/internal/graph"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.Node(i))
	}
	return b.Build()
}

func TestBetweennessPath(t *testing.T) {
	// P4 (0-1-2-3): cb(0)=cb(3)=0, cb(1)=cb(2)=2
	cb := Betweenness(path(4))
	want := []float64{0, 2, 2, 0}
	for i := range want {
		if math.Abs(cb[i]-want[i]) > 1e-9 {
			t.Fatalf("cb=%v want %v", cb, want)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// star with 5 leaves: center mediates C(5,2)=10 pairs
	cb := Betweenness(star(6))
	if math.Abs(cb[0]-10) > 1e-9 {
		t.Fatalf("center cb=%v want 10", cb[0])
	}
	for i := 1; i < 6; i++ {
		if cb[i] != 0 {
			t.Fatalf("leaf cb=%v want 0", cb[i])
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	b := graph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.Node(i), graph.Node((i+1)%5))
	}
	cb := Betweenness(b.Build())
	for i := 1; i < 5; i++ {
		if math.Abs(cb[i]-cb[0]) > 1e-9 {
			t.Fatalf("cycle betweenness should be uniform: %v", cb)
		}
	}
}

func TestEdgeBetweennessBridge(t *testing.T) {
	// two triangles joined by bridge (2,3): the bridge carries all 9
	// cross pairs; triangle edges carry far less.
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	eb := EdgeBetweenness(g)
	bridge := eb[[2]graph.Node{2, 3}]
	if math.Abs(bridge-9) > 1e-9 {
		t.Fatalf("bridge betweenness=%v want 9", bridge)
	}
	for k, v := range eb {
		if k != [2]graph.Node{2, 3} && v >= bridge {
			t.Fatalf("edge %v betweenness %v >= bridge", k, v)
		}
	}
}

func TestEdgeBetweennessViewRespectsRemovals(t *testing.T) {
	g := graph.FromEdges(6, [][2]graph.Node{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	v := graph.NewView(g)
	v.Remove(3) // kill the bridge endpoint
	eb := EdgeBetweennessView(v)
	if _, ok := eb[[2]graph.Node{2, 3}]; ok {
		t.Fatal("removed node's edges must not be scored")
	}
	// remaining triangle edges all get scored
	if len(eb) == 0 {
		t.Fatal("remaining edges should have scores")
	}
}

func TestEigenvectorStar(t *testing.T) {
	// star: center has the highest eigenvector centrality
	ev := Eigenvector(star(8), 200, 1e-10)
	for i := 1; i < 8; i++ {
		if ev[i] >= ev[0] {
			t.Fatalf("leaf %d centrality %v >= center %v", i, ev[i], ev[0])
		}
		if math.Abs(ev[i]-ev[1]) > 1e-6 {
			t.Fatalf("leaves should be symmetric: %v", ev)
		}
	}
}

func TestEigenvectorCliqueUniform(t *testing.T) {
	b := graph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
		}
	}
	ev := Eigenvector(b.Build(), 200, 1e-10)
	for i := 1; i < 5; i++ {
		if math.Abs(ev[i]-ev[0]) > 1e-6 {
			t.Fatalf("clique centrality should be uniform: %v", ev)
		}
	}
	// unit norm
	var norm float64
	for _, x := range ev {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-6 {
		t.Fatalf("norm=%v want 1", norm)
	}
}

func TestEigenvectorEdgeless(t *testing.T) {
	ev := Eigenvector(graph.FromEdges(3, nil), 10, 1e-9)
	for _, x := range ev {
		if x != 0 {
			t.Fatalf("edgeless centrality=%v want all zero", ev)
		}
	}
	if Eigenvector(graph.FromEdges(0, nil), 10, 1e-9) != nil {
		t.Fatal("empty graph should return nil")
	}
}

func TestRank(t *testing.T) {
	scores := []float64{0.5, 0.9, 0.1, 0.9}
	if r := Rank(scores, 1); r != 1 {
		t.Fatalf("rank=%d want 1", r)
	}
	if r := Rank(scores, 0); r != 3 {
		t.Fatalf("rank=%d want 3", r)
	}
	if r := Rank(scores, 2); r != 4 {
		t.Fatalf("rank=%d want 4", r)
	}
}

// Brute-force betweenness via explicit shortest-path enumeration on tiny
// graphs, cross-checking Brandes.
func TestBetweennessMatchesBruteForce(t *testing.T) {
	// brute force: BFS from every source, count shortest paths through v
	brute := func(g *graph.Graph) []float64 {
		n := g.NumNodes()
		cb := make([]float64, n)
		// count shortest paths s->t and those passing through v
		for s := 0; s < n; s++ {
			dist := graph.BFS(g, graph.Node(s))
			// sigma[t] = number of shortest s-t paths (DP by distance)
			sigma := make([]float64, n)
			sigma[s] = 1
			order := make([]graph.Node, 0, n)
			for u := 0; u < n; u++ {
				if dist[u] != graph.INF {
					order = append(order, graph.Node(u))
				}
			}
			sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
			for _, u := range order {
				for _, w := range g.Neighbors(u) {
					if dist[w] == dist[u]+1 {
						sigma[w] += sigma[u]
					}
				}
			}
			// sigmaThrough[v][t]: paths s->t through v — computed per pair
			for tt := 0; tt < n; tt++ {
				if tt == s || dist[tt] == graph.INF {
					continue
				}
				for v := 0; v < n; v++ {
					if v == s || v == tt || dist[v] == graph.INF {
						continue
					}
					// paths through v = sigma(s,v) * sigma(v,t) if on a shortest path
					dv := graph.BFS(g, graph.Node(v))
					if dist[v]+dv[tt] == dist[tt] {
						sigmaV := sigma[v]
						// sigma(v,t): recompute from v
						sigmaVT := countPaths(g, graph.Node(v), graph.Node(tt))
						total := sigma[tt]
						if total > 0 {
							cb[v] += sigmaV * sigmaVT / total
						}
					}
				}
			}
		}
		for i := range cb {
			cb[i] /= 2 // undirected double count
		}
		return cb
	}
	g := graph.FromEdges(7, [][2]graph.Node{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 5}, {5, 3}, {4, 6}})
	want := brute(g)
	got := Betweenness(g)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("cb[%d]=%v want %v (all: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

// countPaths counts shortest s→t paths by BFS DP.
func countPaths(g *graph.Graph, s, t graph.Node) float64 {
	dist := graph.BFS(g, s)
	n := g.NumNodes()
	sigma := make([]float64, n)
	sigma[s] = 1
	order := make([]graph.Node, 0, n)
	for u := 0; u < n; u++ {
		if dist[u] != graph.INF {
			order = append(order, graph.Node(u))
		}
	}
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	for _, u := range order {
		for _, w := range g.Neighbors(u) {
			if dist[w] == dist[u]+1 {
				sigma[w] += sigma[u]
			}
		}
	}
	return sigma[t]
}
