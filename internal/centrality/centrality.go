// Package centrality implements the node centralities used by the paper:
// betweenness centrality (Brandes 2001) — both the node form used in the
// Section 6.3.2 case study and the edge form that drives the Girvan–Newman
// divisive baseline — and eigenvector centrality by power iteration
// (Zaki & Meira 2014).
package centrality

import (
	"math"

	"dmcs/internal/graph"
)

// Betweenness computes exact node betweenness centrality for every node
// with Brandes' algorithm in O(|V||E|).
func Betweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	cb := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]graph.Node, n)
	stack := make([]graph.Node, 0, n)
	queue := make([]graph.Node, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		src := graph.Node(s)
		dist[src] = 0
		sigma[src] = 1
		queue = append(queue, src)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				cb[w] += delta[w]
			}
		}
	}
	// undirected graphs double-count each pair
	for i := range cb {
		cb[i] /= 2
	}
	return cb
}

// EdgeBetweenness computes exact edge betweenness centrality, keyed by
// (u,v) with u < v. This is the edge score of the Girvan–Newman algorithm.
func EdgeBetweenness(g *graph.Graph) map[[2]graph.Node]float64 {
	return EdgeBetweennessView(graph.NewView(g))
}

// EdgeBetweennessView computes edge betweenness over the alive subgraph of
// a view (GN removes edges incrementally; views let it rescore cheaply).
func EdgeBetweennessView(v *graph.View) map[[2]graph.Node]float64 {
	g := v.Graph()
	n := g.NumNodes()
	out := make(map[[2]graph.Node]float64)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]graph.Node, n)
	stack := make([]graph.Node, 0, n)
	queue := make([]graph.Node, 0, n)

	for s := 0; s < n; s++ {
		if !v.Alive(graph.Node(s)) {
			continue
		}
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		src := graph.Node(s)
		dist[src] = 0
		sigma[src] = 1
		queue = append(queue, src)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			stack = append(stack, x)
			for _, w := range g.Neighbors(x) {
				if !v.Alive(w) {
					continue
				}
				if dist[w] < 0 {
					dist[w] = dist[x] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[x]+1 {
					sigma[w] += sigma[x]
					preds[w] = append(preds[w], x)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, x := range preds[w] {
				c := sigma[x] / sigma[w] * (1 + delta[w])
				delta[x] += c
				a, b := x, w
				if a > b {
					a, b = b, a
				}
				out[[2]graph.Node{a, b}] += c
			}
		}
	}
	for k := range out {
		out[k] /= 2
	}
	return out
}

// Eigenvector computes eigenvector centrality by power iteration,
// normalized to unit Euclidean norm. The iteration uses the shifted matrix
// A+I, which has the same leading eigenvector as A but converges on
// bipartite graphs (where plain power iteration oscillates between the ±λ
// eigenvectors). It runs at most maxIter iterations or until the L1 change
// drops below tol.
func Eigenvector(g *graph.Graph, maxIter int, tol float64) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if g.NumEdges() == 0 {
		return make([]float64, n) // degenerate: no meaningful centrality
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	for it := 0; it < maxIter; it++ {
		for i := range next {
			next[i] = x[i] // the +I shift
		}
		for u := 0; u < n; u++ {
			for _, w := range g.Neighbors(graph.Node(u)) {
				next[u] += x[w]
			}
		}
		var norm float64
		for _, v := range next {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return next // edgeless graph
		}
		var diff float64
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < tol {
			break
		}
	}
	return x
}

// Rank returns the 1-based rank of node u under the given scores (rank 1 =
// highest score; ties share the better rank).
func Rank(scores []float64, u graph.Node) int {
	r := 1
	for _, s := range scores {
		if s > scores[u] {
			r++
		}
	}
	return r
}
