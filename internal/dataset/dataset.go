// Package dataset provides the evaluation graphs of the paper's Table 1.
// Zachary's karate club is embedded verbatim (its edge list is public
// domain and tiny). The remaining real-world datasets cannot be
// redistributed inside an offline module, so deterministic synthetic
// stand-ins with matching scale and community structure are generated
// instead — see DESIGN.md §2 for the substitution rationale. Every
// dataset is generated with a fixed seed, so all runs see identical data.
package dataset

import (
	"fmt"
	"sort"

	"dmcs/internal/gen"
	"dmcs/internal/graph"
	"dmcs/internal/lfr"
)

// Dataset is a graph with ground-truth communities.
type Dataset struct {
	Name        string
	G           *graph.Graph
	Communities [][]graph.Node
	Overlap     bool   // overlapping ground truth (DBLP/Youtube/LiveJournal)
	Kind        string // "real" or "stand-in"
	Note        string // provenance / substitution note
}

// NumCommunities returns |C| for the Table 1 row.
func (d *Dataset) NumCommunities() int { return len(d.Communities) }

// CommunityOf returns the ground-truth communities containing u.
func (d *Dataset) CommunityOf(u graph.Node) [][]graph.Node {
	var out [][]graph.Node
	for _, c := range d.Communities {
		for _, v := range c {
			if v == u {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// karateEdges is Zachary's karate club (1977), 34 nodes, 78 edges,
// 1-indexed as in the original paper.
var karateEdges = [][2]int{
	{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {1, 7}, {1, 8}, {1, 9}, {1, 11},
	{1, 12}, {1, 13}, {1, 14}, {1, 18}, {1, 20}, {1, 22}, {1, 32},
	{2, 3}, {2, 4}, {2, 8}, {2, 14}, {2, 18}, {2, 20}, {2, 22}, {2, 31},
	{3, 4}, {3, 8}, {3, 9}, {3, 10}, {3, 14}, {3, 28}, {3, 29}, {3, 33},
	{4, 8}, {4, 13}, {4, 14},
	{5, 7}, {5, 11},
	{6, 7}, {6, 11}, {6, 17},
	{7, 17},
	{9, 31}, {9, 33}, {9, 34},
	{10, 34},
	{14, 34},
	{15, 33}, {15, 34},
	{16, 33}, {16, 34},
	{19, 33}, {19, 34},
	{20, 34},
	{21, 33}, {21, 34},
	{23, 33}, {23, 34},
	{24, 26}, {24, 28}, {24, 30}, {24, 33}, {24, 34},
	{25, 26}, {25, 28}, {25, 32},
	{26, 32},
	{27, 30}, {27, 34},
	{28, 34},
	{29, 32}, {29, 34},
	{30, 33}, {30, 34},
	{31, 33}, {31, 34},
	{32, 33}, {32, 34},
	{33, 34},
}

// karateMrHi lists the 1-indexed members of Mr. Hi's faction after the
// club split; the rest joined the officer's club.
var karateMrHi = []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 17, 18, 20, 22}

// Karate returns Zachary's karate club with the two post-split factions as
// ground truth.
func Karate() *Dataset {
	b := graph.NewBuilder(34)
	labels := make([]string, 34)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", i+1)
	}
	b.SetLabels(labels)
	for _, e := range karateEdges {
		b.AddEdge(graph.Node(e[0]-1), graph.Node(e[1]-1))
	}
	g := b.Build()
	inHi := make(map[graph.Node]bool, len(karateMrHi))
	for _, u := range karateMrHi {
		inHi[graph.Node(u-1)] = true
	}
	var hi, officer []graph.Node
	for u := graph.Node(0); u < 34; u++ {
		if inHi[u] {
			hi = append(hi, u)
		} else {
			officer = append(officer, u)
		}
	}
	return &Dataset{
		Name:        "karate",
		G:           g,
		Communities: [][]graph.Node{hi, officer},
		Kind:        "real",
		Note:        "Zachary 1977, embedded verbatim",
	}
}

// Dolphin returns the Dolphin stand-in: 62 nodes, two communities,
// ≈159 edges (planted partition, fixed seed).
func Dolphin() *Dataset {
	g, comms := gen.PlantedPartition([]int{28, 34}, 0.095, 0.010, 1001)
	return &Dataset{
		Name: "dolphin", G: g, Communities: comms, Kind: "stand-in",
		Note: "planted-partition stand-in for Lusseau 2003 (62n/159e/2C)",
	}
}

// Mexican returns the Mexican-politicians stand-in: 35 nodes, two
// communities, ≈117 edges.
func Mexican() *Dataset {
	g, comms := gen.PlantedPartition([]int{17, 18}, 0.22, 0.030, 1002)
	return &Dataset{
		Name: "mexican", G: g, Communities: comms, Kind: "stand-in",
		Note: "planted-partition stand-in for Gil-Mendieta & Schmidt 1996 (35n/117e/2C)",
	}
}

// Polblogs returns the political-blogs stand-in: 1,224 nodes, two
// communities, heterogeneous (hub-heavy) degrees, ≈16.7K edges. The degree
// heterogeneity preserves the unbalanced-clustering-coefficient property
// the paper uses to explain NCA's weakness on this graph.
func Polblogs() *Dataset {
	g, comms := gen.ChungLuPartition([2]int{586, 638}, 52, 2.3, 0.095, 1003)
	return &Dataset{
		Name: "polblogs", G: g, Communities: comms, Kind: "stand-in",
		Note: "Chung–Lu two-block stand-in for Adamic & Glance 2005 (1224n/16718e/2C)",
	}
}

// lfrStandin builds a reduced-scale LFR graph mimicking a SNAP network
// with overlapping ground truth flavor (communities stay disjoint in LFR;
// the Overlap flag only switches the evaluation protocol, as in the
// paper).
func lfrStandin(name string, cfg lfr.Config, note string) *Dataset {
	res, err := lfr.Generate(cfg)
	if err != nil {
		// configurations are fixed constants validated by tests
		panic(fmt.Sprintf("dataset: %s stand-in generation failed: %v", name, err))
	}
	return &Dataset{
		Name: name, G: res.G, Communities: res.Communities,
		Overlap: true, Kind: "stand-in", Note: note,
	}
}

// DBLP returns the DBLP stand-in at the given node scale (n ≤ 0 selects
// the default 50,000): sparse, many small low-diameter communities,
// matching the paper's Figure 4 observation that ≈80% of DBLP communities
// have diameter ≤ 4.
func DBLP(n int) *Dataset {
	if n <= 0 {
		n = 50000
	}
	return lfrStandin("dblp", lfr.Config{
		N: n, AvgDeg: 6.6, MaxDeg: 300, Mu: 0.25,
		DegreeExp: 2, CommExp: 1, MinComm: 6, MaxComm: 60, Seed: 2001,
		OverlapNodes: n / 20, OverlapMemberships: 2,
	}, "LFR stand-in for SNAP com-DBLP (317K/1.05M/13477C)")
}

// Youtube returns the Youtube stand-in at the given node scale (default
// 60,000): very sparse with very small communities.
func Youtube(n int) *Dataset {
	if n <= 0 {
		n = 60000
	}
	return lfrStandin("youtube", lfr.Config{
		N: n, AvgDeg: 5.3, MaxDeg: 500, Mu: 0.35,
		DegreeExp: 2, CommExp: 1, MinComm: 5, MaxComm: 40, Seed: 2002,
		OverlapNodes: n / 20, OverlapMemberships: 2,
	}, "LFR stand-in for SNAP com-Youtube (1.13M/2.99M/8385C)")
}

// Livejournal returns the LiveJournal stand-in at the given node scale
// (default 80,000): denser, larger communities.
func Livejournal(n int) *Dataset {
	if n <= 0 {
		n = 80000
	}
	return lfrStandin("livejournal", lfr.Config{
		N: n, AvgDeg: 17, MaxDeg: 400, Mu: 0.3,
		DegreeExp: 2, CommExp: 1, MinComm: 10, MaxComm: 200, Seed: 2003,
		OverlapNodes: n / 20, OverlapMemberships: 2,
	}, "LFR stand-in for SNAP com-LiveJournal (4.0M/34.7M/288KC)")
}

// Names lists the Table 1 dataset names in paper order.
func Names() []string {
	return []string{"dolphin", "karate", "polblogs", "mexican", "dblp", "youtube", "livejournal"}
}

// Load returns a dataset by Table 1 name. The large stand-ins accept a
// scale override via LoadScaled; Load uses their defaults.
func Load(name string) (*Dataset, error) {
	return LoadScaled(name, 0)
}

// LoadScaled is Load with an explicit node count for the three large
// stand-ins (ignored by the small datasets).
func LoadScaled(name string, n int) (*Dataset, error) {
	switch name {
	case "karate":
		return Karate(), nil
	case "dolphin":
		return Dolphin(), nil
	case "mexican":
		return Mexican(), nil
	case "polblogs":
		return Polblogs(), nil
	case "dblp":
		return DBLP(n), nil
	case "youtube":
		return Youtube(n), nil
	case "livejournal":
		return Livejournal(n), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
}

// Membership returns a node→community-index labeling (first containing
// community wins; -1 for uncovered nodes).
func (d *Dataset) Membership() []int {
	lab := make([]int, d.G.NumNodes())
	for i := range lab {
		lab[i] = -1
	}
	for ci, c := range d.Communities {
		for _, u := range c {
			if lab[u] < 0 {
				lab[u] = ci
			}
		}
	}
	return lab
}

// DiameterHistogram computes the Figure 4 statistic: the exact diameter of
// every ground-truth community's induced subgraph, as a histogram
// (index = diameter). Communities larger than maxSize are skipped to keep
// the computation tractable, mirroring the paper's per-community costs.
func (d *Dataset) DiameterHistogram(maxSize int) map[int]int {
	hist := make(map[int]int)
	for _, c := range d.Communities {
		if maxSize > 0 && len(c) > maxSize {
			continue
		}
		sub, _ := d.G.InducedSubgraph(c)
		hist[graph.Diameter(sub)]++
	}
	return hist
}

// SortedCommunitySizes returns the community sizes ascending (used by
// dataset statistics reporting).
func (d *Dataset) SortedCommunitySizes() []int {
	out := make([]int, len(d.Communities))
	for i, c := range d.Communities {
		out[i] = len(c)
	}
	sort.Ints(out)
	return out
}
