package dataset

import (
	"testing"

	"dmcs/internal/graph"
)

func TestKarateShape(t *testing.T) {
	d := Karate()
	if d.G.NumNodes() != 34 {
		t.Fatalf("karate nodes=%d want 34", d.G.NumNodes())
	}
	if d.G.NumEdges() != 78 {
		t.Fatalf("karate edges=%d want 78", d.G.NumEdges())
	}
	if len(d.Communities) != 2 {
		t.Fatalf("karate communities=%d want 2", len(d.Communities))
	}
	if len(d.Communities[0])+len(d.Communities[1]) != 34 {
		t.Fatal("karate communities must cover all nodes")
	}
	if _, k := graph.ConnectedComponents(d.G); k != 1 {
		t.Fatal("karate should be connected")
	}
	// spot-check famous structure: node 1 (id 0) and node 34 (id 33) are
	// the two faction leaders with the highest degrees
	if d.G.Degree(0) != 16 {
		t.Fatalf("deg(node1)=%d want 16", d.G.Degree(0))
	}
	if d.G.Degree(33) != 17 {
		t.Fatalf("deg(node34)=%d want 17", d.G.Degree(33))
	}
	// labels are 1-indexed strings
	if d.G.Label(0) != "1" || d.G.Label(33) != "34" {
		t.Fatal("karate labels should be 1-indexed")
	}
}

func TestKarateLeadersInOppositeFactions(t *testing.T) {
	d := Karate()
	sameSide := func(a, b graph.Node) bool {
		for _, c := range d.Communities {
			hasA, hasB := false, false
			for _, u := range c {
				if u == a {
					hasA = true
				}
				if u == b {
					hasB = true
				}
			}
			if hasA && hasB {
				return true
			}
		}
		return false
	}
	if sameSide(0, 33) {
		t.Fatal("Mr. Hi and the officer must be in different factions")
	}
}

func TestSmallStandinsMatchTable1Scale(t *testing.T) {
	cases := []struct {
		d          *Dataset
		n          int
		minE, maxE int
	}{
		{Dolphin(), 62, 120, 200},
		{Mexican(), 35, 90, 145},
		{Polblogs(), 1224, 13000, 21000},
	}
	for _, c := range cases {
		if c.d.G.NumNodes() != c.n {
			t.Fatalf("%s nodes=%d want %d", c.d.Name, c.d.G.NumNodes(), c.n)
		}
		if e := c.d.G.NumEdges(); e < c.minE || e > c.maxE {
			t.Fatalf("%s edges=%d want [%d,%d]", c.d.Name, e, c.minE, c.maxE)
		}
		if len(c.d.Communities) != 2 {
			t.Fatalf("%s communities=%d want 2", c.d.Name, len(c.d.Communities))
		}
		if _, k := graph.ConnectedComponents(c.d.G); k != 1 {
			t.Fatalf("%s should be connected", c.d.Name)
		}
	}
}

func TestStandinsDeterministic(t *testing.T) {
	a, b := Dolphin(), Dolphin()
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("stand-in generation must be deterministic")
	}
	ea, eb := a.G.EdgeList(), b.G.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("stand-in edge lists differ between runs")
		}
	}
}

func TestLargeStandinsSmallScale(t *testing.T) {
	for _, name := range []string{"dblp", "youtube", "livejournal"} {
		d, err := LoadScaled(name, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if d.G.NumNodes() != 2000 {
			t.Fatalf("%s nodes=%d want 2000", name, d.G.NumNodes())
		}
		if !d.Overlap {
			t.Fatalf("%s should use the overlapping-evaluation protocol", name)
		}
		if len(d.Communities) < 10 {
			t.Fatalf("%s has %d communities, want many small ones", name, len(d.Communities))
		}
	}
}

func TestLoadAndNames(t *testing.T) {
	for _, name := range []string{"karate", "dolphin", "mexican", "polblogs"} {
		d, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name {
			t.Fatalf("loaded %q got %q", name, d.Name)
		}
	}
	if _, err := Load("nosuch"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if len(Names()) != 7 {
		t.Fatalf("Names()=%v want the 7 Table 1 datasets", Names())
	}
}

func TestMembership(t *testing.T) {
	d := Karate()
	lab := d.Membership()
	if len(lab) != 34 {
		t.Fatal("labels length")
	}
	for u, l := range lab {
		if l < 0 || l > 1 {
			t.Fatalf("node %d label %d", u, l)
		}
	}
}

func TestCommunityOf(t *testing.T) {
	d := Karate()
	cs := d.CommunityOf(0)
	if len(cs) != 1 {
		t.Fatalf("node 0 should be in exactly 1 faction, got %d", len(cs))
	}
}

func TestDiameterHistogram(t *testing.T) {
	d := Karate()
	hist := d.DiameterHistogram(0)
	total := 0
	for diam, cnt := range hist {
		if diam <= 0 || diam > 10 {
			t.Fatalf("implausible faction diameter %d", diam)
		}
		total += cnt
	}
	if total != 2 {
		t.Fatalf("histogram covers %d communities, want 2", total)
	}
	// maxSize filter skips everything
	if h := d.DiameterHistogram(5); len(h) != 0 {
		t.Fatalf("size filter should skip both factions, got %v", h)
	}
}

func TestSortedCommunitySizes(t *testing.T) {
	d := Karate()
	s := d.SortedCommunitySizes()
	if len(s) != 2 || s[0] > s[1] {
		t.Fatalf("sizes=%v", s)
	}
	if s[0]+s[1] != 34 {
		t.Fatalf("sizes=%v should sum to 34", s)
	}
}

func TestLargeStandinsHaveOverlap(t *testing.T) {
	d, err := LoadScaled("dblp", 2000)
	if err != nil {
		t.Fatal(err)
	}
	count := make(map[graph.Node]int)
	for _, c := range d.Communities {
		for _, u := range c {
			count[u]++
		}
	}
	multi := 0
	for _, k := range count {
		if k > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("dblp stand-in should have overlapping memberships")
	}
	// roughly 5% of nodes
	if multi < 50 || multi > 200 {
		t.Fatalf("overlapping nodes=%d want ≈100 of 2000", multi)
	}
}
