// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per experiment. Each iteration runs
// the experiment at a reduced-but-representative scale so the whole suite
// finishes on a laptop; pass the paper-scale parameters through
// cmd/experiments for full runs (see EXPERIMENTS.md for recorded results).
package dmcs_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"dmcs"
	"dmcs/internal/harness"
	"dmcs/internal/lfr"
	"dmcs/internal/queries"
)

// benchConfig is the reduced configuration shared by the experiment
// benchmarks.
func benchConfig() harness.Config {
	return harness.Config{
		K:            3,
		NumQuerySets: 5,
		QuerySize:    1,
		Timeout:      30 * time.Second,
		Seed:         1,
		Out:          io.Discard,
	}
}

// benchLFR is the reduced Table 2 configuration.
func benchLFR() lfr.Config {
	cfg := lfr.Default()
	cfg.N = 1000
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	return cfg
}

// standinScale is the node count used for the dblp/youtube/livejournal
// stand-ins in benchmarks.
const standinScale = 2000

func BenchmarkTable1DatasetStats(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Table1(standinScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SyntheticConfig(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4CommunityDiameters(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig4(standinScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5RemovalOrders(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8EffectivenessSweeps(b *testing.B) {
	c := benchConfig()
	sweeps := []harness.LFRSweep{{Param: "mu", Values: []float64{0.2}}}
	algos := []string{harness.AlgoKC, harness.AlgoKT, harness.AlgoHighCore, harness.AlgoHighTruss, harness.AlgoFPA}
	for i := 0; i < b.N; i++ {
		if err := c.Fig8and9(benchLFR(), sweeps, algos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9EfficiencySweeps(b *testing.B) {
	// Figure 9 reports the running times of the Figure 8 sweeps; the
	// bench exercises the full roster including the slow NCA path on a
	// smaller graph.
	c := benchConfig()
	cfg := benchLFR()
	cfg.N = 600
	sweeps := []harness.LFRSweep{{Param: "davg", Values: []float64{20}}}
	for i := 0; i < b.N; i++ {
		if err := c.Fig8and9(cfg, sweeps, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10MultiQuery(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig10(benchLFR(), []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Scalability(b *testing.B) {
	c := benchConfig()
	algos := []string{harness.AlgoKC, harness.AlgoHighCore, harness.AlgoFPA}
	for i := 0; i < b.N; i++ {
		if err := c.Fig11(benchLFR(), []int{1000, 2000}, algos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12ObjectiveAblation(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig12(benchLFR()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13PruningAblation(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig13(benchLFR()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14VariantMatrix(b *testing.B) {
	c := benchConfig()
	cfg := benchLFR()
	cfg.N = 600 // NCA variants are quadratic; keep iterations short
	for i := 0; i < b.N; i++ {
		if err := c.Fig14(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15SmallRealGraphs(b *testing.B) {
	c := benchConfig()
	// skip the slowest baselines (GN/clique/CNM) in the bench loop; the
	// full roster runs via cmd/experiments -exp fig15
	algos := []string{
		harness.AlgoKC, harness.AlgoKT, harness.AlgoKECC, harness.AlgoICWI,
		harness.AlgoHuang, harness.AlgoWu, harness.AlgoHighCore,
		harness.AlgoHighTruss, harness.AlgoNCA, harness.AlgoFPA,
	}
	for i := 0; i < b.N; i++ {
		if err := c.Fig15and16(algos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17LargeStandins(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig17and18(standinScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19ParameterK(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig19(standinScale, []int{3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudy(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.CaseStudy(standinScale); err != nil {
			b.Fatal(err)
		}
	}
}

// engineWorkload generates the shared LFR graph and FPA query roster the
// engine benchmarks answer — the many-queries-one-graph workload.
func engineWorkload(b *testing.B) (*lfr.Result, []dmcs.EngineQuery) {
	b.Helper()
	res, err := lfr.Generate(benchLFR())
	if err != nil {
		b.Fatal(err)
	}
	var qs []dmcs.EngineQuery
	for _, size := range []int{1, 2, 4} {
		for _, q := range queries.Generate(res.G, res.Communities, queries.Options{
			NumSets: 16, Size: size, Seed: int64(size),
		}) {
			qs = append(qs, dmcs.EngineQuery{Nodes: q})
		}
	}
	if len(qs) == 0 {
		b.Fatal("no query sets generated")
	}
	return res, qs
}

// BenchmarkEngineSerialFPA is the baseline: the same query roster answered
// one at a time through the one-shot entry point, which re-derives the
// component and aggregates per call.
func BenchmarkEngineSerialFPA(b *testing.B) {
	res, qs := engineWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := dmcs.FPA(res.G, q.Nodes, dmcs.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkEngineBatch answers the roster through the shared-snapshot
// engine at increasing worker counts. The cache is disabled so every
// iteration measures real searches; throughput should scale with workers
// up to the core count.
func BenchmarkEngineBatch(b *testing.B) {
	res, qs := engineWorkload(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := dmcs.NewEngine(res.G, dmcs.EngineOptions{Workers: workers, CacheSize: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.SearchBatch(context.Background(), qs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// reweight copies g with a deterministic pseudo-random weight in
// (0.5, 2.5) on every edge (LCG keyed by seed), so the weighted
// benchmarks below all measure the same workload shape.
func reweight(g *dmcs.Graph, seed uint64) *dmcs.Graph {
	wb := dmcs.NewBuilder(g.NumNodes())
	g.Edges(func(u, v dmcs.Node) bool {
		seed = seed*6364136223846793005 + 1442695040888963407
		wb.SetWeight(u, v, 0.5+2*float64(seed>>11)/float64(1<<53))
		return true
	})
	return wb.Build()
}

// BenchmarkWeightedSearchFPA measures the public one-shot entry point on
// a weighted graph: every call packs a CSR snapshot and peels over flat
// arrays (no edge-weight-map lookups in the peel).
func BenchmarkWeightedSearchFPA(b *testing.B) {
	res, _ := engineWorkload(b)
	g := reweight(res.G, 1)
	q := []dmcs.Node{res.Communities[0][0]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dmcs.FPA(g, q, dmcs.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightedEngineBatch answers a weighted-graph roster through
// the shared-snapshot engine: the snapshot's packed weights serve every
// query, so the per-query cost is the pure flat-array peel.
func BenchmarkWeightedEngineBatch(b *testing.B) {
	res, qs := engineWorkload(b)
	eng := dmcs.NewEngine(reweight(res.G, 2), dmcs.EngineOptions{CacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.SearchBatch(context.Background(), qs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkEngineCacheHit measures the repeated-roster path: after one
// warm-up batch, every query is answered from the LRU cache.
func BenchmarkEngineCacheHit(b *testing.B) {
	res, qs := engineWorkload(b)
	eng := dmcs.NewEngine(res.G, dmcs.EngineOptions{})
	eng.SearchBatch(context.Background(), qs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.SearchBatch(context.Background(), qs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(qs)*b.N)/b.Elapsed().Seconds(), "queries/s")
}
