// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per experiment. Each iteration runs
// the experiment at a reduced-but-representative scale so the whole suite
// finishes on a laptop; pass the paper-scale parameters through
// cmd/experiments for full runs (see EXPERIMENTS.md for recorded results).
package dmcs_test

import (
	"io"
	"testing"
	"time"

	"dmcs/internal/harness"
	"dmcs/internal/lfr"
)

// benchConfig is the reduced configuration shared by the experiment
// benchmarks.
func benchConfig() harness.Config {
	return harness.Config{
		K:            3,
		NumQuerySets: 5,
		QuerySize:    1,
		Timeout:      30 * time.Second,
		Seed:         1,
		Out:          io.Discard,
	}
}

// benchLFR is the reduced Table 2 configuration.
func benchLFR() lfr.Config {
	cfg := lfr.Default()
	cfg.N = 1000
	cfg.MaxDeg = 100
	cfg.MaxComm = 300
	return cfg
}

// standinScale is the node count used for the dblp/youtube/livejournal
// stand-ins in benchmarks.
const standinScale = 2000

func BenchmarkTable1DatasetStats(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Table1(standinScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SyntheticConfig(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4CommunityDiameters(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig4(standinScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5RemovalOrders(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8EffectivenessSweeps(b *testing.B) {
	c := benchConfig()
	sweeps := []harness.LFRSweep{{Param: "mu", Values: []float64{0.2}}}
	algos := []string{harness.AlgoKC, harness.AlgoKT, harness.AlgoHighCore, harness.AlgoHighTruss, harness.AlgoFPA}
	for i := 0; i < b.N; i++ {
		if err := c.Fig8and9(benchLFR(), sweeps, algos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9EfficiencySweeps(b *testing.B) {
	// Figure 9 reports the running times of the Figure 8 sweeps; the
	// bench exercises the full roster including the slow NCA path on a
	// smaller graph.
	c := benchConfig()
	cfg := benchLFR()
	cfg.N = 600
	sweeps := []harness.LFRSweep{{Param: "davg", Values: []float64{20}}}
	for i := 0; i < b.N; i++ {
		if err := c.Fig8and9(cfg, sweeps, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10MultiQuery(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig10(benchLFR(), []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Scalability(b *testing.B) {
	c := benchConfig()
	algos := []string{harness.AlgoKC, harness.AlgoHighCore, harness.AlgoFPA}
	for i := 0; i < b.N; i++ {
		if err := c.Fig11(benchLFR(), []int{1000, 2000}, algos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12ObjectiveAblation(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig12(benchLFR()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13PruningAblation(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig13(benchLFR()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14VariantMatrix(b *testing.B) {
	c := benchConfig()
	cfg := benchLFR()
	cfg.N = 600 // NCA variants are quadratic; keep iterations short
	for i := 0; i < b.N; i++ {
		if err := c.Fig14(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15SmallRealGraphs(b *testing.B) {
	c := benchConfig()
	// skip the slowest baselines (GN/clique/CNM) in the bench loop; the
	// full roster runs via cmd/experiments -exp fig15
	algos := []string{
		harness.AlgoKC, harness.AlgoKT, harness.AlgoKECC, harness.AlgoICWI,
		harness.AlgoHuang, harness.AlgoWu, harness.AlgoHighCore,
		harness.AlgoHighTruss, harness.AlgoNCA, harness.AlgoFPA,
	}
	for i := 0; i < b.N; i++ {
		if err := c.Fig15and16(algos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17LargeStandins(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig17and18(standinScale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19ParameterK(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.Fig19(standinScale, []int{3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudy(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := c.CaseStudy(standinScale); err != nil {
			b.Fatal(err)
		}
	}
}
