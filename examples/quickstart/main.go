// Quickstart: the smallest end-to-end use of the public DMCS API.
//
// It builds a toy social network of two tight friend groups joined by one
// acquaintance edge, then asks for the community of one member. FPA
// returns exactly that member's friend group: densely connected inside,
// sparsely connected outside — the density-modularity objective at work.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"dmcs"
)

const network = `
# two friend groups bridged by a single edge
ann bob
ann cat
ann dan
bob cat
bob dan
cat dan
dan eve
eve fay
eve gus
eve hal
fay gus
fay hal
gus hal
`

func main() {
	g, err := dmcs.ParseEdgeList(strings.NewReader(network))
	if err != nil {
		log.Fatal(err)
	}

	// find ann's node id from the label table
	var ann dmcs.Node = -1
	for u := 0; u < g.NumNodes(); u++ {
		if g.Label(dmcs.Node(u)) == "ann" {
			ann = dmcs.Node(u)
		}
	}

	res, err := dmcs.FPA(g, []dmcs.Node{ann}, dmcs.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("query: ann\n")
	members := make([]string, len(res.Community))
	for i, u := range res.Community {
		members[i] = g.Label(u)
	}
	fmt.Printf("community (%d nodes): %s\n", len(res.Community), strings.Join(members, ", "))
	fmt.Printf("density modularity: %.4f\n", res.Score)
	fmt.Printf("for comparison, the whole graph scores %.4f\n",
		dmcs.DensityModularityOf(g, allNodes(g)))
}

func allNodes(g *dmcs.Graph) []dmcs.Node {
	out := make([]dmcs.Node, g.NumNodes())
	for i := range out {
		out[i] = dmcs.Node(i)
	}
	return out
}
