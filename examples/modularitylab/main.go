// Modularitylab reproduces the paper's worked Examples 1–3 numerically:
// the Figure 1 toy network where classic modularity falls for the
// free-rider community A∪B while density modularity picks A, and the
// ring-of-cliques resolution-limit gadget of Example 3 where classic
// modularity prefers merging two cliques while density modularity keeps
// them apart.
//
// Run with: go run ./examples/modularitylab
package main

import (
	"fmt"
	"log"

	"dmcs"
	"dmcs/internal/gen"
	"dmcs/internal/modularity"
)

func main() {
	fmt.Println("── Examples 1 & 2: Figure 1 toy network ──")
	g, a, ab := gen.Figure1Toy()
	fmt.Printf("|E| = %d\n", g.NumEdges())
	fmt.Printf("CM(A)    = %.6f   (paper: 0.158284)\n", modularity.Classic(g, a))
	fmt.Printf("CM(A∪B)  = %.6f   (paper: 0.2485207)  ← classic prefers the merged community\n", modularity.Classic(g, ab))
	fmt.Printf("DM(A)    = %.6f   (paper: 1.028846)   ← density modularity prefers A\n", modularity.Density(g, a))
	fmt.Printf("DM(A∪B)  = %.6f   (paper: 0.8076923)\n", modularity.Density(g, ab))

	res, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPA from u1 returns %d nodes (community A) with DM %.6f\n\n",
		len(res.Community), res.Score)

	fmt.Println("── Example 3: ring of 30 six-node cliques ──")
	ring, comms := gen.RingOfCliques(30, 6)
	fmt.Printf("|E| = %d (paper: 480)\n", ring.NumEdges())
	split := comms[0]
	merged := append(append([]dmcs.Node{}, comms[0]...), comms[1]...)
	fmt.Printf("CM(merged) = %.8f  (paper: 0.06013889) ← classic prefers merging\n", modularity.Classic(ring, merged))
	fmt.Printf("CM(split)  = %.8f  (paper: 0.03013889)\n", modularity.Classic(ring, split))
	fmt.Printf("DM(merged) = %.6f  (paper: 2.405556)\n", modularity.Density(ring, merged))
	fmt.Printf("DM(split)  = %.6f  (paper: 2.411111)  ← density modularity keeps the clique\n", modularity.Density(ring, split))

	res, err = dmcs.FPA(ring, []dmcs.Node{split[0]}, dmcs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPA from a clique member returns %d nodes — the single clique.\n", len(res.Community))
}
