// Multiquery demonstrates the many-queries-one-graph workload (the
// paper's Figure 10 scenario) served by the concurrent engine: on an LFR
// benchmark graph, query sets of growing size are drawn from ground-truth
// communities and answered in one batch over a shared snapshot. More
// query nodes give DMCS more evidence, so NMI rises with |Q|; the engine
// answers the whole roster in parallel and reports its throughput,
// cache, and latency statistics at the end.
//
// Run with: go run ./examples/multiquery
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"dmcs/internal/engine"
	"dmcs/internal/lfr"
	"dmcs/internal/metrics"
	"dmcs/internal/queries"
)

func main() {
	cfg := lfr.Default()
	cfg.N = 1500 // laptop-friendly; pass the paper's 5000 via cmd/experiments
	cfg.MaxComm = 400
	res, err := lfr.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := res.G
	fmt.Printf("LFR benchmark graph: %d nodes, %d edges, %d ground-truth communities\n\n",
		g.NumNodes(), g.NumEdges(), len(res.Communities))

	// One query roster per |Q|; every set comes from one ground-truth
	// community (the paper's Section 6.1 protocol).
	sizes := []int{1, 4, 8}
	var batch []engine.Query
	bySize := make(map[int][]int) // |Q| -> indices into batch
	for _, size := range sizes {
		sets := queries.Generate(g, res.Communities, queries.Options{NumSets: 8, Size: size, Seed: int64(size)})
		for _, q := range sets {
			bySize[size] = append(bySize[size], len(batch))
			batch = append(batch, engine.Query{Nodes: q})
		}
	}

	workers := runtime.GOMAXPROCS(0)
	eng := engine.New(g, engine.Options{Workers: workers})
	start := time.Now()
	results := eng.SearchBatch(context.Background(), batch)
	wall := time.Since(start)

	fmt.Println("Effect of the query-set size |Q| (FPA over the shared snapshot):")
	fmt.Println("|Q|   queries   mean NMI vs ground truth")
	for _, size := range sizes {
		var nmi []float64
		for _, i := range bySize[size] {
			if results[i].Err != nil {
				continue // e.g. a query set split across components
			}
			nmi = append(nmi, metrics.BestAgainst(results[i].Result.Community, res.Communities, g.NumNodes(), metrics.NMI))
		}
		fmt.Printf("%-5d %-9d %.3f\n", size, len(nmi), metrics.Mean(nmi))
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %d queries in %s (%.1f q/s, %d workers)\n",
		len(batch), wall.Round(time.Millisecond), float64(len(batch))/wall.Seconds(), workers)
	fmt.Printf("        cache-hits=%d errors=%d p50=%s p95=%s\n",
		st.CacheHits, st.Errors, st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond))

	// Re-running the same batch is answered entirely from the LRU cache.
	start = time.Now()
	eng.SearchBatch(context.Background(), batch)
	st = eng.Stats()
	fmt.Printf("re-run: %s (cache-hits now %d of %d queries)\n",
		time.Since(start).Round(time.Microsecond), st.CacheHits, st.Queries)
}
