// Multiquery demonstrates community search with several query nodes (the
// paper's Figure 10 scenario): on an LFR benchmark graph, query sets of
// growing size are drawn from one ground-truth community, and kc, kecc,
// NCA and FPA answers are scored against the ground truth. More query
// nodes give DMCS more evidence, so NMI rises with |Q| for NCA/FPA while
// the parameterized baselines stay flat.
//
// Run with: go run ./examples/multiquery
package main

import (
	"fmt"
	"log"
	"os"

	"dmcs/internal/harness"
	"dmcs/internal/lfr"
)

func main() {
	cfg := harness.DefaultConfig(os.Stdout)
	cfg.NumQuerySets = 8

	base := lfr.Default()
	base.N = 1500 // laptop-friendly; pass the paper's 5000 via cmd/experiments
	base.MaxComm = 400

	fmt.Println("Effect of the query-set size |Q| on an LFR benchmark graph")
	fmt.Println("(kc and kecc return the same large subgraph regardless of |Q|;")
	fmt.Println(" NCA/FPA exploit the extra evidence — the paper's Figure 10)")
	fmt.Println()
	if err := cfg.Fig10(base, []int{1, 4, 8}); err != nil {
		log.Fatal(err)
	}
}
