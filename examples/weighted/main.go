// Weighted demonstrates community search on a weighted graph — the
// general form of the paper's Definition 2, where DM(G,C) =
// (w_C − d_C²/(4 w_G)) / |C| over edge weights instead of edge counts.
//
// The scenario: a collaboration network where edge weight is the number of
// joint projects. Unit-weight search sees two symmetric teams around the
// shared manager and returns the smaller one; with the real weights the
// heavily-collaborating team wins.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"
	"strings"

	"dmcs"
)

func main() {
	// manager "mia" sits between a tight core team (many joint projects)
	// and a looser advisory circle (one project each)
	type edge struct {
		a, b string
		w    float64
	}
	edges := []edge{
		// core team: heavy pairwise collaboration
		{"mia", "ana", 8}, {"mia", "ben", 8}, {"mia", "cal", 8},
		{"ana", "ben", 9}, {"ana", "cal", 7}, {"ben", "cal", 8},
		// advisory circle: one joint project each
		{"mia", "dee", 1}, {"mia", "eli", 1},
		{"dee", "eli", 1},
	}
	b := dmcs.NewBuilder(0)
	ids := map[string]dmcs.Node{}
	id := func(name string) dmcs.Node {
		if v, ok := ids[name]; ok {
			return v
		}
		v := dmcs.Node(len(ids))
		ids[name] = v
		return v
	}
	for _, e := range edges {
		b.SetWeight(id(e.a), id(e.b), e.w)
	}
	g := b.Build()
	names := make([]string, len(ids))
	for n, v := range ids {
		names[v] = n
	}

	res, err := dmcs.FPA(g, []dmcs.Node{ids["mia"]}, dmcs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var members []string
	for _, u := range res.Community {
		members = append(members, names[u])
	}
	fmt.Printf("query: mia\n")
	fmt.Printf("weighted community (%d people): %s\n", len(members), strings.Join(members, ", "))
	fmt.Printf("weighted density modularity: %.4f\n", res.Score)

	// contrast: the same topology with every weight forced to 1
	b2 := dmcs.NewBuilder(len(ids))
	for _, e := range edges {
		b2.AddEdge(ids[e.a], ids[e.b])
	}
	gUnit := b2.Build()
	resUnit, err := dmcs.FPA(gUnit, []dmcs.Node{ids["mia"]}, dmcs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var unitMembers []string
	for _, u := range resUnit.Community {
		unitMembers = append(unitMembers, names[u])
	}
	fmt.Printf("\nunit-weight community (%d people): %s\n",
		len(unitMembers), strings.Join(unitMembers, ", "))
	fmt.Printf("unweighted density modularity: %.4f\n", resUnit.Score)
	fmt.Println("\nproject counts pull the community toward the heavy core team.")
}
