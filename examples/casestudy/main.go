// Casestudy reproduces Section 6.3.2 on a co-authorship-style graph: the
// community of a hub "author" node found by DMCS (FPA) versus its 3-truss
// and 3-core communities.
//
// The paper's findings, which this example reproduces in shape:
//   - FPA returns a small community where every member is tied to the
//     query author, and the query has the top betweenness and eigenvector
//     centrality ranks inside it;
//   - the 3-truss community is an order of magnitude larger with the
//     query adjacent to only a sliver of it;
//   - the 3-core community is larger still (thousands of nodes), with the
//     query's centrality ranks deep in the tail.
//
// Run with: go run ./examples/casestudy
package main

import (
	"fmt"
	"log"
	"os"

	"dmcs/internal/harness"
)

func main() {
	cfg := harness.DefaultConfig(os.Stdout)
	fmt.Println("DMCS vs 3-truss vs 3-core around the highest-degree author")
	fmt.Println("(DBLP-style co-authorship stand-in, 4000 nodes)")
	fmt.Println()
	if err := cfg.CaseStudy(4000); err != nil {
		log.Fatal(err)
	}
}
