// Example dynamic demonstrates serving community-search queries while
// the graph evolves: Engine.Apply absorbs edge insertions, deletions,
// weight changes, and new nodes as atomic batches, publishing each as a
// new snapshot version. Queries are never blocked — in-flight searches
// drain on the version they started against, epoch-keyed caching makes
// stale results unservable, and the component partition is maintained
// incrementally (inserts union, deletes re-flood only the hit component).
package main

import (
	"context"
	"fmt"

	"dmcs"
)

func main() {
	// Two dense clusters sharing no edges: {0..4} and {5..9}.
	b := dmcs.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(dmcs.Node(i), dmcs.Node(j))
			b.AddEdge(dmcs.Node(i+5), dmcs.Node(j+5))
		}
	}
	g := b.Build()

	eng := dmcs.NewEngine(g, dmcs.EngineOptions{Workers: 4})
	ctx := context.Background()
	show := func(when string, nodes ...dmcs.Node) {
		res, err := eng.Search(ctx, dmcs.EngineQuery{Nodes: nodes})
		if err != nil {
			fmt.Printf("%-28s query %v -> error: %v\n", when, nodes, err)
			return
		}
		fmt.Printf("%-28s query %v -> community %v (score %.4f)\n", when, nodes, res.Community, res.Score)
	}

	show("epoch 0 (two clusters):", 0)
	show("epoch 0:", 0, 5) // disconnected: fails

	// Bridge the clusters and hang a new member off node 0.
	var batch dmcs.EngineBatch
	batch.AddEdge(4, 5)
	batch.AddEdge(0, 10)      // node 10 springs into existence
	st, _ := eng.Apply(batch) // error is always nil without a WAL attached
	fmt.Printf("apply: epoch=%d edges+%d nodes+%d reflooded=%d components=%d\n",
		st.Epoch, st.EdgesAdded, st.NodesAdded, st.RefloodedNodes, st.Components)

	show("epoch 1 (bridged):", 0, 5) // now answerable
	show("epoch 1:", 10)

	// Cut the bridge again — only the merged component is re-flooded.
	batch.Reset()
	batch.RemoveEdge(4, 5)
	st, _ = eng.Apply(batch)
	fmt.Printf("apply: epoch=%d edges-%d reflooded=%d components=%d\n",
		st.Epoch, st.EdgesRemoved, st.RefloodedNodes, st.Components)

	show("epoch 2 (cut):", 0, 5) // disconnected again
	show("epoch 2:", 0)          // cached epoch-1 answer is unservable; recomputed

	stats := eng.Stats()
	fmt.Printf("served %d queries, %d cache hits, %d errors\n", stats.Queries, stats.CacheHits, stats.Errors)
}
