// Package dmcs is the public API of the DMCS library — a Go implementation
// of "DMCS: Density Modularity based Community Search" (SIGMOD 2022).
//
// Community search finds a connected subgraph containing given query nodes.
// DMCS scores candidate communities with *density modularity*, a
// parameter-free objective that combines classic graph modularity (relative
// cohesiveness: dense inside, sparse outside) with graph density (absolute
// cohesiveness), provably alleviating the free-rider and resolution-limit
// problems of classic modularity.
//
// Quick start:
//
//	b := dmcs.NewBuilder(0)
//	b.AddEdge(0, 1) // ... add edges
//	g := b.Build()
//	res, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{})
//	// res.Community is a connected community containing node 0.
//
// Two algorithms are provided. FPA (Fast Peeling Algorithm) runs in
// log-linear time and is the recommended default; NCA (Non-articulation
// Cancellation Algorithm) is the more exhaustive O(|V|(|V|+|E|)) variant.
// The NCADR/FPADMG cross-overs, the layer-pruning strategy and alternative
// objectives from the paper's ablations are exposed through Options and
// Search.
package dmcs

import (
	"io"

	"dmcs/internal/dmcs"
	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// Node is a dense node identifier in [0, NumNodes).
type Node = graph.Node

// Graph is an immutable simple undirected graph.
type Graph = graph.Graph

// Builder accumulates edges and produces an immutable Graph.
type Builder = graph.Builder

// Options tunes a search; the zero value is the paper's default setup.
type Options = dmcs.Options

// Result is the outcome of a community search.
type Result = dmcs.Result

// Variant names one of the paper's four algorithm instantiations.
type Variant = dmcs.Variant

// Objective selects the best-subgraph goodness function (Figure 12).
type Objective = dmcs.Objective

// Algorithm variants (Section 5 and Section 6.2.5).
const (
	VariantFPA    = dmcs.VariantFPA
	VariantNCA    = dmcs.VariantNCA
	VariantNCADR  = dmcs.VariantNCADR
	VariantFPADMG = dmcs.VariantFPADMG
)

// Selection objectives (Figure 12 ablation).
const (
	DensityModularity            = dmcs.DensityModularity
	ClassicModularity            = dmcs.ClassicModularity
	GeneralizedModularityDensity = dmcs.GeneralizedModularityDensity
)

// Errors returned by the search entry points.
var (
	ErrEmptyQuery   = dmcs.ErrEmptyQuery
	ErrDisconnected = dmcs.ErrDisconnected
)

// NewBuilder creates a Builder for a graph with n nodes (AddEdge may grow
// the node count implicitly).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an explicit edge list.
func FromEdges(n int, edges [][2]Node) *Graph { return graph.FromEdges(n, edges) }

// ParseEdgeList reads a whitespace-separated edge list with arbitrary
// string node labels (see dmcs/internal/graph for the format).
func ParseEdgeList(r io.Reader) (*Graph, error) { return graph.ParseEdgeList(r) }

// FPA runs the Fast Peeling Algorithm (Section 5.5) — the recommended,
// log-linear-time algorithm.
func FPA(g *Graph, q []Node, opts Options) (*Result, error) { return dmcs.FPA(g, q, opts) }

// NCA runs the Non-articulation Cancellation Algorithm (Section 5.4).
func NCA(g *Graph, q []Node, opts Options) (*Result, error) { return dmcs.NCA(g, q, opts) }

// Search runs any of the four algorithm variants.
func Search(g *Graph, q []Node, v Variant, opts Options) (*Result, error) {
	return dmcs.Search(g, q, v, opts)
}

// DensityModularityOf evaluates the paper's density modularity DM(G,C)
// (Definition 2, unweighted form) for an arbitrary node set.
func DensityModularityOf(g *Graph, c []Node) float64 { return modularity.Density(g, c) }

// ClassicModularityOf evaluates the classic modularity CM(G,C)
// (Definition 1) for an arbitrary node set.
func ClassicModularityOf(g *Graph, c []Node) float64 { return modularity.Classic(g, c) }

// WeightedDensityModularityOf evaluates Definition 2 on a weighted graph.
func WeightedDensityModularityOf(g *Graph, c []Node) float64 {
	return modularity.DensityWeighted(g, c)
}
