// Package dmcs is the public API of the DMCS library — a Go implementation
// of "DMCS: Density Modularity based Community Search" (SIGMOD 2022).
//
// Community search finds a connected subgraph containing given query nodes.
// DMCS scores candidate communities with *density modularity*, a
// parameter-free objective that combines classic graph modularity (relative
// cohesiveness: dense inside, sparse outside) with graph density (absolute
// cohesiveness), provably alleviating the free-rider and resolution-limit
// problems of classic modularity.
//
// Quick start:
//
//	b := dmcs.NewBuilder(0)
//	b.AddEdge(0, 1) // ... add edges
//	g := b.Build()
//	res, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{})
//	// res.Community is a connected community containing node 0.
//
// Two algorithms are provided. FPA (Fast Peeling Algorithm) runs in
// log-linear time and is the recommended default; NCA (Non-articulation
// Cancellation Algorithm) is the more exhaustive O(|V|(|V|+|E|)) variant.
// The NCADR/FPADMG cross-overs, the layer-pruning strategy and alternative
// objectives from the paper's ablations are exposed through Options and
// Search.
//
// # Serving many queries
//
// The one-shot entry points above re-derive the query's connected
// component and the modularity aggregates on every call. When many
// queries hit the same graph — the usual server workload — build an
// Engine instead:
//
//	eng := dmcs.NewEngine(g, dmcs.EngineOptions{Workers: 8})
//	res, err := eng.Search(ctx, dmcs.EngineQuery{Nodes: []dmcs.Node{0}})
//	batch := eng.SearchBatch(ctx, queries) // bounded fan-out, input order
//
// NewEngine takes one immutable, read-optimized snapshot of the graph
// (CSR adjacency plus the cached degree/volume aggregates the modularity
// formulas need, plus the connected-component partition) and serves
// queries concurrently through a bounded worker pool. Each query carries
// a context.Context for cancellation and deadlines; a result cache keyed
// by the normalized query-node set and options answers repeats instantly;
// Engine.Stats reports queries served, cache hits, collapsed and computed
// searches, and p50/p95 latency. EngineOptions tunes the pool size
// (default GOMAXPROCS), the cache capacity (default 1024 entries;
// negative disables), and a default per-query timeout.
//
// The serving path is built to scale across cores — no query-rate-
// proportional work takes a globally contended lock. The result cache is
// hash-sharded with a per-shard array-backed LRU, the stats counters are
// striped cache-line-padded atomics (totals stay exact, not sampled),
// per-query scratch comes from a per-P pool, and identical concurrent
// misses collapse onto one in-flight computation (singleflight): a
// thundering herd of N identical cold queries costs one peel, with the
// other N-1 reported as Stats().Collapsed. A joiner's context cancels
// only its own wait; the shared computation is aborted only when its
// last waiter leaves, and timed-out or abandoned partial results are
// never cached. A warm cache hit performs zero heap allocations and no
// channel operations; the Workers bound throttles computed searches
// only.
//
// Results are deterministic: the engine treats query nodes as a set
// (sorting and deduplicating them first) and then returns exactly what
// FPA/NCA/Search return for that normalized node slice, regardless of
// worker count, shard count, cache state, or which caller's computation
// a collapsed query joined. Callers that pass already sorted,
// duplicate-free queries get byte-identical answers to the serial entry
// points.
//
// # Intra-query parallelism
//
// Options.Parallelism opens a second axis of parallelism INSIDE one
// query, for the rare whale component whose peel would otherwise pin a
// single core for milliseconds:
//
//	res, err := dmcs.FPA(g, q, dmcs.Options{Parallelism: 8})
//
// Values <= 1 mean fully serial (the default); larger values fan the
// peel's data-parallel phases — BFS layering, whole-layer removal
// rounds under layer pruning, the farthest-layer scoring fill, and
// NCA's candidate argmax — across up to that many workers, capped at
// GOMAXPROCS. The setting only engages on components of at least ~8k
// nodes; below that, gang coordination costs more than the peel, and
// the search silently runs the serial kernels. Within a removal round
// nodes are removed in ascending compact id — exactly the serial order
// — so the parallel path is bit-identical to Parallelism == 1: same
// community, same float score, same removal order, regardless of worker
// count or schedule. Because results are identical, Parallelism does
// not participate in the engine's cache key. The sequential residues
// (FPA's heap drain, NCA's articulation-point pass) bound the speedup;
// see the README for the Amdahl breakdown per variant.
//
// Engine.SearchBatch complements this with cross-query fusion: a batch
// is admitted against one snapshot, identical queries are deduplicated
// into one peel, and the remainder is grouped by connected component so
// the worker gang drains each component's queries back-to-back against
// its shared sub-CSR. Skewed batches — most queries landing in one hot
// component — stop paying per-query admission and setup costs B times.
//
// # Dynamic graphs
//
// The engine's graph is not frozen: Engine.Apply takes an EngineBatch of
// staged mutations — AddEdge, SetWeight, RemoveEdge, AddNode — and
// applies them atomically:
//
//	var b dmcs.EngineBatch
//	b.AddEdge(7, 42)
//	b.SetWeight(3, 9, 2.5)
//	b.RemoveEdge(1, 2)
//	stats, err := eng.Apply(b) // stats.Epoch, stats.RefloodedNodes, ...; err is
//	                           // always nil unless a write-ahead log is attached
//
// Apply merges the batch into the current packed snapshot in one sweep
// over the CSR arrays (no round-trip through the map-backed Graph),
// maintains the connected-component partition incrementally — insertions
// union components in near-constant time, and only components that
// actually lost an edge are re-flooded — and publishes the result as the
// next graph version with an atomic pointer swap. Within a batch the last
// op on an edge wins; removing an absent edge is a no-op; endpoints past
// the node count (and AddNode) grow the graph; setting a non-unit weight
// on an unweighted graph upgrades it to weighted.
//
// The guarantees that make this safe under full query traffic:
//
//   - Drain: Apply never blocks queries and never mutates a published
//     snapshot. Queries in flight when Apply lands complete on the version
//     they admitted against; queries admitted afterwards see the new one.
//     A query racing an Apply therefore returns a result bit-identical to
//     running against either the pre- or the post-batch graph — never a
//     hybrid.
//   - Component-scoped invalidation: every snapshot carries a
//     per-component version vector — each component has a stable key
//     (never reused) and a version, the epoch (0 initially, +1 per
//     Apply) that last touched it. The result LRU keys every entry by
//     (component key, version), so after an Apply no query can observe
//     a pre-update cached community for a component the batch touched —
//     not even one inserted by a slow pre-update query finishing after
//     the swap. Components the batch did not touch keep their versions:
//     their cached results, sub-CSRs, and in-flight computations stay
//     valid across the swap, so a localized update does not cool the
//     cache for the rest of the graph. A component's version also pins
//     the total graph weight its answers were normalized with, so an
//     untouched component's scores do not drift as unrelated parts of
//     the graph change; the next Apply touching it picks up the current
//     total. EngineApplyStats.Invalidated/Retained report the split.
//   - Writers serialize: concurrent Apply calls are applied one at a
//     time, each producing its own version.
//
// # Architecture: the flat CSR core, scoped per query
//
// Every algorithm in the library runs on one canonical substrate: a CSR
// snapshot of the graph — adjacency packed into a single contiguous
// slice, a parallel edge-weight slice, and cached per-node weighted
// degrees and total edge weight. Peeling mutations (the node removals of
// the search algorithms) are layered on top as an alive-set view that
// maintains the modularity sufficient statistics incrementally over the
// packed arrays. No hashed edge-weight-map lookup happens on any query
// path.
//
// Individual queries are additionally scoped to their connected
// component: the search relabels the component into a compact sub-CSR
// and peels entirely in that dense local space, so per-query time and
// memory are proportional to the component — typically a tiny fraction
// of the graph — rather than to the whole snapshot. All per-query
// scratch (the compact sub-CSR, alive-set arrays, BFS queues, heaps,
// epoch-tagged visited tables) comes from reusable arenas: the one-shot
// entry points draw them from an internal pool, and the Engine owns one
// per worker plus a per-component sub-CSR cache on its snapshot. The
// zero-alloc contract that falls out: steady-state engine serving —
// a warm result cache answering repeated queries — performs zero heap
// allocations per query, and even a computed query allocates only its
// escaping Result. CI gates the cache-hit benchmark at 0 allocs/op.
//
// The map-backed Graph is the construction and I/O type only: build or
// parse one, then either call the one-shot entry points (FPA, NCA,
// Search — each packs a throwaway snapshot per call), or pack a snapshot
// yourself with NewCSR and reuse it across calls to SearchCSR, or — for
// concurrent serving — hand the graph to NewEngine, which snapshots once
// and routes every query through the shared packed arrays. All three
// routes return identical results; the compact relabelling is monotonic
// and the substrate preserves the exact float accumulation order of the
// historical implementation, so even scores are bit-identical.
package dmcs

import (
	"io"

	"dmcs/internal/dmcs"
	"dmcs/internal/engine"
	"dmcs/internal/graph"
	"dmcs/internal/modularity"
)

// Node is a dense node identifier in [0, NumNodes).
type Node = graph.Node

// Graph is an immutable simple undirected graph.
type Graph = graph.Graph

// Builder accumulates edges and produces an immutable Graph.
type Builder = graph.Builder

// CSR is the packed, read-optimized graph snapshot every search runs on
// (see the package comment's architecture section). Build one with NewCSR
// and reuse it across SearchCSR calls to amortize the packing.
type CSR = graph.CSR

// Options tunes a search; the zero value is the paper's default setup.
type Options = dmcs.Options

// Result is the outcome of a community search.
type Result = dmcs.Result

// Variant names one of the paper's four algorithm instantiations.
type Variant = dmcs.Variant

// Objective selects the best-subgraph goodness function (Figure 12).
type Objective = dmcs.Objective

// Algorithm variants (Section 5 and Section 6.2.5).
const (
	VariantFPA    = dmcs.VariantFPA
	VariantNCA    = dmcs.VariantNCA
	VariantNCADR  = dmcs.VariantNCADR
	VariantFPADMG = dmcs.VariantFPADMG
)

// Selection objectives (Figure 12 ablation).
const (
	DensityModularity            = dmcs.DensityModularity
	ClassicModularity            = dmcs.ClassicModularity
	GeneralizedModularityDensity = dmcs.GeneralizedModularityDensity
)

// Engine serves many queries concurrently against one immutable graph
// snapshot (see the package comment's "Serving many queries" section).
type Engine = engine.Engine

// EngineOptions configures an Engine; the zero value is a sensible
// server setup.
type EngineOptions = engine.Options

// EngineQuery is one community-search request submitted to an Engine.
type EngineQuery = engine.Query

// EngineStats is a point-in-time snapshot of an Engine's counters.
type EngineStats = engine.Stats

// EngineBatch stages graph mutations for Engine.Apply (see the package
// comment's "Dynamic graphs" section).
type EngineBatch = engine.Batch

// EngineApplyStats reports what one Engine.Apply did: the new epoch, the
// batch's net effect, how many nodes the incremental component
// maintenance re-flooded, and the invalidation split — components
// superseded (restamped to the new epoch) vs retained (carried with
// their cached state intact).
type EngineApplyStats = engine.ApplyStats

// BatchResult pairs one query of Engine.SearchBatch with its outcome.
type BatchResult = engine.BatchResult

// Errors returned by the search entry points.
var (
	ErrEmptyQuery   = dmcs.ErrEmptyQuery
	ErrDisconnected = dmcs.ErrDisconnected
	// ErrNodeOutOfRange is returned by the Engine for query nodes outside
	// the graph.
	ErrNodeOutOfRange = engine.ErrNodeOutOfRange
	// ErrQueueTimeout is returned by the Engine when a query's timeout
	// budget expired while it was still queued for a worker slot: the
	// search never started, so there is no partial result and nothing is
	// cached — distinct from a peel-timeout, which returns a best-so-far
	// community with Result.TimedOut set.
	ErrQueueTimeout = engine.ErrQueueTimeout
)

// EnginePanicError is returned by the Engine for a query whose search
// panicked: the panic is recovered at the engine boundary (per-query
// isolation) so a poisoned query costs one failed response, never the
// process.
type EnginePanicError = engine.PanicError

// NewBuilder creates a Builder for a graph with n nodes (AddEdge may grow
// the node count implicitly).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an explicit edge list.
func FromEdges(n int, edges [][2]Node) *Graph { return graph.FromEdges(n, edges) }

// ParseEdgeList reads a whitespace-separated edge list with arbitrary
// string node labels (see dmcs/internal/graph for the format).
func ParseEdgeList(r io.Reader) (*Graph, error) { return graph.ParseEdgeList(r) }

// FPA runs the Fast Peeling Algorithm (Section 5.5) — the recommended,
// log-linear-time algorithm.
func FPA(g *Graph, q []Node, opts Options) (*Result, error) { return dmcs.FPA(g, q, opts) }

// NCA runs the Non-articulation Cancellation Algorithm (Section 5.4).
func NCA(g *Graph, q []Node, opts Options) (*Result, error) { return dmcs.NCA(g, q, opts) }

// Search runs any of the four algorithm variants.
func Search(g *Graph, q []Node, v Variant, opts Options) (*Result, error) {
	return dmcs.Search(g, q, v, opts)
}

// NewCSR packs g into the canonical flat snapshot.
func NewCSR(g *Graph) *CSR { return graph.NewCSR(g) }

// SearchCSR runs any of the four algorithm variants against a prebuilt
// snapshot, skipping the per-call packing the Graph entry points pay.
func SearchCSR(c *CSR, q []Node, v Variant, opts Options) (*Result, error) {
	return dmcs.SearchCSR(c, q, v, opts)
}

// NewEngine builds a read-optimized snapshot of g and returns an Engine
// serving concurrent queries against it. The context passed to
// Engine.Search / Engine.SearchBatch cancels individual queries.
func NewEngine(g *Graph, opts EngineOptions) *Engine { return engine.New(g, opts) }

// DensityModularityOf evaluates the paper's density modularity DM(G,C)
// (Definition 2, unweighted form) for an arbitrary node set.
func DensityModularityOf(g *Graph, c []Node) float64 { return modularity.Density(g, c) }

// ClassicModularityOf evaluates the classic modularity CM(G,C)
// (Definition 1) for an arbitrary node set.
func ClassicModularityOf(g *Graph, c []Node) float64 { return modularity.Classic(g, c) }

// WeightedDensityModularityOf evaluates Definition 2 on a weighted graph.
func WeightedDensityModularityOf(g *Graph, c []Node) float64 {
	return modularity.DensityWeighted(g, c)
}
