package dmcs_test

import (
	"fmt"
	"strings"

	"dmcs"
)

// ExampleFPA searches the community of node 0 in two cliques joined by a
// bridge: the result is node 0's own clique.
func ExampleFPA() {
	b := dmcs.NewBuilder(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(dmcs.Node(i), dmcs.Node(j))
			b.AddEdge(dmcs.Node(i+5), dmcs.Node(j+5))
		}
	}
	b.AddEdge(4, 5) // the bridge
	g := b.Build()

	res, err := dmcs.FPA(g, []dmcs.Node{0}, dmcs.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Community)
	// Output: [0 1 2 3 4]
}

// ExampleSearch runs the NCA variant explicitly.
func ExampleSearch() {
	g := dmcs.FromEdges(6, [][2]dmcs.Node{
		{0, 1}, {1, 2}, {0, 2}, // triangle
		{3, 4}, {4, 5}, {3, 5}, // triangle
		{2, 3}, // bridge
	})
	res, err := dmcs.Search(g, []dmcs.Node{0}, dmcs.VariantNCA, dmcs.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Community)
	// Output: [0 1 2]
}

// ExampleParseEdgeList loads a labeled edge list and searches from a label.
func ExampleParseEdgeList() {
	const network = `
alice bob
alice carol
bob carol
carol dave
dave erin
dave frank
erin frank
`
	g, err := dmcs.ParseEdgeList(strings.NewReader(network))
	if err != nil {
		panic(err)
	}
	// find alice's id
	var alice dmcs.Node
	for u := 0; u < g.NumNodes(); u++ {
		if g.Label(dmcs.Node(u)) == "alice" {
			alice = dmcs.Node(u)
		}
	}
	res, err := dmcs.FPA(g, []dmcs.Node{alice}, dmcs.Options{})
	if err != nil {
		panic(err)
	}
	for _, u := range res.Community {
		fmt.Println(g.Label(u))
	}
	// Output:
	// alice
	// bob
	// carol
}

// ExampleDensityModularityOf evaluates Definition 2 on the paper's
// Figure 1 community A.
func ExampleDensityModularityOf() {
	b := dmcs.NewBuilder(16)
	k4 := func(base dmcs.Node) {
		for i := dmcs.Node(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	k4(0)
	k4(4)
	k4(8)
	k4(12)
	b.AddEdge(0, 4)
	b.AddEdge(1, 5)
	g := b.Build()

	fmt.Printf("%.6f\n", dmcs.DensityModularityOf(g, []dmcs.Node{0, 1, 2, 3}))
	// Output: 1.028846
}
